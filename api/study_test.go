package api

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// runStudy computes every chunk (deliberately out of order — resume
// never sees them sequentially) and finalizes.
func runStudy(t *testing.T, s *Study) []byte {
	t.Helper()
	ctx := context.Background()
	chunks := make([][]byte, s.NumChunks())
	for i := s.NumChunks() - 1; i >= 0; i-- {
		c, err := s.ComputeChunk(ctx, i)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		chunks[i] = c
	}
	out, err := s.Finalize(ctx, chunks)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return out
}

// TestStudyBytesMatchSync is the acceptance contract: for every
// endpoint, a chunked study's finalized bytes are identical to the
// synchronous endpoint's canonical encoding of the same request — the
// property that lets a job result serve later synchronous requests
// from the durable tier.
func TestStudyBytesMatchSync(t *testing.T) {
	e := NewEvaluator(8)
	ctx := context.Background()
	cases := []struct {
		endpoint string
		raw      string
		sync     func() ([]byte, error)
	}{
		{"mc", `{"domain": "DNN", "samples": 9000, "seed": 7}`, func() ([]byte, error) {
			var req MonteCarloRequest
			if err := json.Unmarshal([]byte(`{"domain": "DNN", "samples": 9000, "seed": 7}`), &req); err != nil {
				return nil, err
			}
			v, err := e.RunMonteCarlo(ctx, req.Normalized())
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		}},
		{"sweep", `{"domain": "DNN", "axis": "lifetime", "from": 1, "to": 10, "points": 3000}`, func() ([]byte, error) {
			var req SweepRequest
			if err := json.Unmarshal([]byte(`{"domain": "DNN", "axis": "lifetime", "from": 1, "to": 10, "points": 3000}`), &req); err != nil {
				return nil, err
			}
			v, err := e.RunSweep(ctx, req.Normalized())
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		}},
		{"evaluate", `{"platforms": [{"domain": "DNN", "kind": "fpga"}], "workload": {"napps": 5, "lifetime_years": 2, "volume": 1e6}}`, func() ([]byte, error) {
			var req EvaluateRequest
			if err := json.Unmarshal([]byte(`{"platforms": [{"domain": "DNN", "kind": "fpga"}], "workload": {"napps": 5, "lifetime_years": 2, "volume": 1e6}}`), &req); err != nil {
				return nil, err
			}
			norm := req.Normalized()
			v, err := e.Evaluate(ctx, &norm)
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		}},
		{"compare", `{"domain": "Crypto"}`, func() ([]byte, error) {
			var req CompareRequest
			if err := json.Unmarshal([]byte(`{"domain": "Crypto"}`), &req); err != nil {
				return nil, err
			}
			v, err := e.RunCompare(ctx, req.Normalized())
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		}},
		{"crossover", `{"domain": "DNN", "lifetime_years": 2}`, func() ([]byte, error) {
			var req CrossoverRequest
			if err := json.Unmarshal([]byte(`{"domain": "DNN", "lifetime_years": 2}`), &req); err != nil {
				return nil, err
			}
			v, err := e.RunCrossover(ctx, req.Normalized())
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.endpoint, func(t *testing.T) {
			s, err := e.NewStudy(ctx, tc.endpoint, json.RawMessage(tc.raw))
			if err != nil {
				t.Fatalf("NewStudy: %v", err)
			}
			want, err := tc.sync()
			if err != nil {
				t.Fatalf("sync run: %v", err)
			}
			got := runStudy(t, s)
			if !bytes.Equal(got, want) {
				t.Fatalf("study bytes differ from sync endpoint:\nstudy: %.200s\nsync:  %.200s", got, want)
			}
		})
	}
}

// TestStudyChunking pins the decomposition: a 9000-draw MC study at
// 4096 draws per chunk is 3 chunks, and its key matches the
// synchronous cache key for the same normalized request.
func TestStudyChunking(t *testing.T) {
	e := NewEvaluator(4)
	ctx := context.Background()
	s, err := e.NewStudy(ctx, "/v1/mc", json.RawMessage(`{"domain": "DNN", "samples": 9000, "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d, want 3", s.NumChunks())
	}
	var req MonteCarloRequest
	if err := json.Unmarshal([]byte(`{"domain": "DNN", "samples": 9000, "seed": 7}`), &req); err != nil {
		t.Fatal(err)
	}
	key, err := CanonicalKey("/v1/mc", req.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if s.Key != key {
		t.Fatalf("study key %q != sync cache key %q", s.Key, key)
	}
	if _, err := s.ComputeChunk(ctx, 3); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if _, err := s.Finalize(ctx, make([][]byte, 2)); err == nil {
		t.Fatal("short finalize accepted")
	}
}

// TestStudyRejects pins submission-time validation.
func TestStudyRejects(t *testing.T) {
	e := NewEvaluator(4)
	ctx := context.Background()
	for _, tc := range []struct{ endpoint, raw string }{
		{"nonsense", `{}`},
		{"mc", `{"domain": "DNN", "bogus_field": 1}`},
		{"mc", `{"domain": "NoSuchDomain"}`},
		{"sweep", `{"domain": "DNN", "axis": "bogus"}`},
		{"mc", `{} trailing`},
	} {
		if _, err := e.NewStudy(ctx, tc.endpoint, json.RawMessage(tc.raw)); err == nil {
			t.Errorf("NewStudy(%q, %s) accepted", tc.endpoint, tc.raw)
		}
	}
}
