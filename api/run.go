package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"greenfpga"

	"greenfpga/internal/cache"
	"greenfpga/internal/carbon"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/experiments"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/sweep"
	"greenfpga/internal/telemetry"
	"greenfpga/internal/units"
)

// Evaluator runs the compute endpoints with a content-addressed cache
// of compiled platforms: two requests resolving the same platform spec
// — regardless of workload — share one core.Compile, so repeated and
// swept queries hit the compiled fast path. Plain domain-set members
// additionally share the package-wide memoized domain compilations.
// An Evaluator is safe for concurrent use.
type Evaluator struct {
	compiled *cache.LRU
}

// NewEvaluator returns an Evaluator whose compiled-platform cache
// holds at most maxCompiled entries.
func NewEvaluator(maxCompiled int) *Evaluator {
	return &Evaluator{compiled: cache.New(maxCompiled)}
}

// defaultEvaluator backs the package-level compute functions (the CLI
// path; the server holds its own long-lived Evaluator).
var defaultEvaluator = NewEvaluator(64)

// CompileStats returns the compiled-platform cache's cumulative hit
// and miss counts.
func (e *Evaluator) CompileStats() (hits, misses uint64) { return e.compiled.Stats() }

// platformResult converts an assessment to its JSON form.
func platformResult(a core.Assessment) *PlatformResult {
	b := a.Breakdown
	return &PlatformResult{
		Platform: a.Platform,
		Kind:     string(a.Kind),
		TotalKg:  a.Total().Kilograms(),
		Breakdown: Breakdown{
			DesignKg:         b.Design.Kilograms(),
			ManufacturingKg:  b.Manufacturing.Kilograms(),
			PackagingKg:      b.Packaging.Kilograms(),
			EOLKg:            b.EOL.Kilograms(),
			OperationKg:      b.Operation.Kilograms(),
			AppDevelopmentKg: b.AppDevelopment.Kilograms(),
			ConfigurationKg:  b.Configuration.Kilograms(),
			TotalKg:          b.Total().Kilograms(),
		},
		DevicesManufactured: a.DevicesManufactured,
		FleetSize:           a.FleetSize,
		HardwareGenerations: a.HardwareGenerations,
	}
}

// Normalized expands the legacy scenario document into its spec form
// — name, {Config: ...} platform specs, an apps workload — so a
// scenario body and its spec spelling produce one canonical key, and
// fills the DNN default domain on bare kind selectors (the request
// carries no domain field of its own). A request that mixes the
// scenario with any spec field is left alone for Evaluate to reject.
func (r EvaluateRequest) Normalized() EvaluateRequest {
	if r.Scenario != nil && r.Name == "" && len(r.Platforms) == 0 && r.Workload == nil {
		sc := r.Scenario
		r.Name = sc.Name
		if sc.FPGA != nil {
			r.Platforms = append(r.Platforms, PlatformSpec{Config: sc.FPGA})
		}
		if sc.ASIC != nil {
			r.Platforms = append(r.Platforms, PlatformSpec{Config: sc.ASIC})
		}
		r.Workload = &WorkloadSpec{
			Apps:      append([]AppConfig(nil), sc.Apps...),
			StrictEq2: sc.StrictEq2,
		}
		r.Scenario = nil
		return r
	}
	if needsDomain(r.Platforms) && len(r.Platforms) > 0 {
		r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
		for i := range r.Platforms {
			r.Platforms[i] = r.Platforms[i].normalizedWith("DNN")
		}
	}
	return r
}

// Evaluate assesses the request's platforms on its workload, matching
// `greenfpga run` exactly for legacy scenario bodies. Because the
// response carries dedicated fpga/asic sides, each platform must
// resolve to one of those kinds; GPU/CPU platforms are rejected rather
// than silently dropped — their studies go to RunCompare, whose
// response is kind-agnostic. Cancelling ctx stops the evaluation
// between platforms and surfaces the context error.
func (e *Evaluator) Evaluate(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, error) {
	if req == nil {
		return nil, &Error{Code: "invalid_request", Message: "missing scenario"}
	}
	r := req.Normalized()
	if r.Scenario != nil {
		return nil, &Error{Code: "invalid_request",
			Message: "scenario is legacy sugar for name/platforms/workload; use exactly one form"}
	}
	if len(r.Platforms) == 0 {
		if r.Workload != nil {
			return nil, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("study %q needs at least one platform", r.Name)}
		}
		return nil, &Error{Code: "invalid_request", Message: "missing scenario (or platforms/workload specs)"}
	}
	if len(r.Platforms) > 2 {
		return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"the evaluate response carries one fpga and one asic side; %d platforms need /v1/compare",
			len(r.Platforms))}
	}
	if r.Workload == nil {
		return nil, &Error{Code: "invalid_request", Message: "missing workload"}
	}
	scen, err := r.Workload.scenario(r.Name)
	if err != nil {
		return nil, err
	}
	resp := &EvaluateResponse{Scenario: r.Name}
	for _, sp := range r.Platforms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stop := telemetry.StartStage(ctx, "resolve")
		c, err := e.resolveSpec(sp)
		stop()
		if err != nil {
			return nil, fmt.Errorf("platform %s: %w", sp.describe(), err)
		}
		kind := string(c.Platform().Spec.Kind)
		var slot **PlatformResult
		switch kind {
		case "fpga":
			slot = &resp.FPGA
		case "asic":
			slot = &resp.ASIC
		default:
			return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"the evaluate response carries dedicated fpga/asic sides; %s platform %s does not fit it — use /v1/compare",
				kind, sp.describe())}
		}
		if *slot != nil {
			return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"two %s platforms; the evaluate response carries one per side — use /v1/compare", kind)}
		}
		stop = telemetry.StartStage(ctx, "compute")
		a, err := c.Evaluate(scen)
		stop()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		*slot = platformResult(a)
	}
	if resp.FPGA != nil && resp.ASIC != nil {
		if resp.ASIC.TotalKg != 0 {
			r := resp.FPGA.TotalKg / resp.ASIC.TotalKg
			resp.Ratio = &r
		}
		resp.Verdict = "asic"
		if resp.FPGA.TotalKg < resp.ASIC.TotalKg {
			resp.Verdict = "fpga"
		}
	}
	return resp, nil
}

// Evaluate runs the request through the package-level evaluator under
// a background context (the CLI path; the server passes its own
// request-scoped context to the Evaluator method).
func Evaluate(req *EvaluateRequest) (*EvaluateResponse, error) {
	return defaultEvaluator.Evaluate(context.Background(), req)
}

// domainSets memoizes compiled iso-performance platform sets by
// canonical domain name; the calibrated domains are immutable, so the
// cache never invalidates. Plain {domain, kind} specs resolve to these
// members, so every endpoint — and every Evaluator — shares one
// compilation per domain platform.
var domainSets sync.Map

// compiledDomainSet resolves and compiles a Table 2 domain's full
// platform set (FPGA, ASIC, then the domain's GPU/CPU calibrations).
func compiledDomainSet(name string) (core.CompiledSet, isoperf.Domain, error) {
	d, err := isoperf.ByName(name)
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	if v, ok := domainSets.Load(d.Name); ok {
		return v.(core.CompiledSet), d, nil
	}
	set, err := d.Set()
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	cs, err := set.Compile()
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	domainSets.Store(d.Name, cs)
	return cs, d, nil
}

// setMember finds the set platform of the given kind.
func setMember(cs core.CompiledSet, kind string) (*core.Compiled, error) {
	kinds := make([]string, len(cs))
	for i, c := range cs {
		kinds[i] = string(c.Platform().Spec.Kind)
		if kinds[i] == kind {
			return c, nil
		}
	}
	return nil, &Error{Code: "invalid_request",
		Message: fmt.Sprintf("domain set has no %q platform (have: %v)", kind, kinds)}
}

// pairRatios lists the upper-triangle pairwise total ratios of a
// comparison. Zero-total denominators (impossible for physical
// platforms) are skipped rather than encoded as +Inf, which canonical
// JSON cannot carry.
func pairRatios(as []core.Assessment, ratios [][]float64) []PairRatio {
	var out []PairRatio
	for i := range as {
		for j := i + 1; j < len(as); j++ {
			if as[j].Total() == 0 {
				continue
			}
			out = append(out, PairRatio{A: as[i].Platform, B: as[j].Platform, Ratio: ratios[i][j]})
		}
	}
	return out
}

// specEchoes derives the response's platform_a/platform_b echoes: the
// paper's plain FPGA-vs-ASIC default stays silent (so legacy responses
// are byte-stable), anything else echoes the kind (for members of the
// request domain) or the resolved device name.
func specEchoes(specs []PlatformSpec, domain string, cs core.CompiledSet) (a, b string) {
	if domain != "" && specs[0].isPlainKind(domain, "fpga") && specs[1].isPlainKind(domain, "asic") {
		return "", ""
	}
	echo := func(sp PlatformSpec, c *core.Compiled) string {
		if sp.Kind != "" && sp.Domain == domain {
			return sp.Kind
		}
		return c.Platform().Spec.Name
	}
	return echo(specs[0], cs[0]), echo(specs[1], cs[1])
}

// Normalized canonicalizes the request: zero fields take the CLI
// defaults, the legacy domain/platform_a/platform_b selectors expand
// into platform specs, and the legacy scenario fields fold into the
// workload — so a legacy body and its spec spelling are one cache
// entry. Partially-set legacy selectors and legacy fields set
// alongside their spec forms are left in place for RunCrossover to
// reject.
func (r CrossoverRequest) Normalized() CrossoverRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && (needsDomain(r.Platforms) || r.PlatformA != "" || r.PlatformB != "") {
		r.Domain = "DNN"
	}
	switch {
	case len(r.Platforms) == 0 && r.PlatformA == "" && r.PlatformB == "":
		r.Platforms = []PlatformSpec{{Domain: r.Domain, Kind: "fpga"}, {Domain: r.Domain, Kind: "asic"}}
	case len(r.Platforms) == 0 && r.PlatformA != "" && r.PlatformB != "":
		r.Platforms = []PlatformSpec{{Domain: r.Domain, Kind: r.PlatformA}, {Domain: r.Domain, Kind: r.PlatformB}}
		r.PlatformA, r.PlatformB = "", ""
	}
	if len(r.Platforms) > 0 {
		r.Domain = specDomains(r.Platforms, r.Domain)
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{NApps: r.NApps, LifetimeYears: r.LifetimeYears, Volume: r.Volume}
		r.NApps, r.LifetimeYears, r.Volume = 0, 0, 0
	}
	w := r.Workload.withUniformDefaults(5, 2, 1e6)
	r.Workload = &w
	if r.MaxApps == 0 {
		r.MaxApps = 30
	}
	return r
}

// RunCrossover answers the three §4.2 crossover questions between the
// request's two platforms, matching `greenfpga crossover` exactly for
// legacy bodies. Any two specs solve — domain-set members, catalog
// devices, inline configs — through the generalized CrossoverBetween
// solvers: the A2F solve reports the first N_app where the first
// platform's total drops below the second's, and the F2A solves
// report where the two totals meet. The three solvers check ctx
// between solves.
func (e *Evaluator) RunCrossover(ctx context.Context, req CrossoverRequest) (*CrossoverResponse, error) {
	req = req.Normalized()
	if req.PlatformA != "" || req.PlatformB != "" {
		if len(req.Platforms) > 0 {
			return nil, &Error{Code: "invalid_request",
				Message: "platform_a/platform_b are legacy sugar for platforms; use exactly one form"}
		}
		return nil, &Error{Code: "invalid_request",
			Message: "platform_a and platform_b must be set together"}
	}
	if req.NApps != 0 || req.LifetimeYears != 0 || req.Volume != 0 {
		return nil, &Error{Code: "invalid_request",
			Message: "napps/lifetime_years/volume are legacy sugar for workload; use exactly one form"}
	}
	w, err := req.Workload.uniformArm("crossover")
	if err != nil {
		return nil, err
	}
	if len(req.Platforms) != 2 {
		return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"crossover solves between exactly two platforms, got %d", len(req.Platforms))}
	}
	stop := telemetry.StartStage(ctx, "resolve")
	cs, err := e.resolveAll(req.Platforms, req.Domain, "crossover", 2)
	stop()
	if err != nil {
		return nil, err
	}
	defer telemetry.StartStage(ctx, "compute")()
	a, b := cs[0], cs[1]
	resp := &CrossoverResponse{Domain: req.Domain}
	resp.PlatformA, resp.PlatformB = specEchoes(req.Platforms, req.Domain, cs)
	n, found, err := core.CrossoverNumAppsBetween(a, b, units.YearsOf(w.LifetimeYears), w.Volume, w.SizeGates, req.MaxApps)
	if err != nil {
		return nil, err
	}
	if found {
		resp.A2FNumApps = Solve{Found: true, Value: float64(n)}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t, found, err := core.CrossoverLifetimeBetween(a, b, w.NApps, w.Volume, w.SizeGates, units.YearsOf(0.05), units.YearsOf(10))
	if err != nil {
		return nil, err
	}
	if found {
		resp.F2ALifetimeYears = Solve{Found: true, Value: t.Years()}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, found, err := core.CrossoverVolumeBetween(a, b, w.NApps, units.YearsOf(w.LifetimeYears), w.SizeGates, 1e2, 1e8)
	if err != nil {
		return nil, err
	}
	if found {
		resp.F2AVolume = Solve{Found: true, Value: v}
	}
	return resp, nil
}

// RunCrossover runs the request through the package-level evaluator
// under a background context.
func RunCrossover(req CrossoverRequest) (*CrossoverResponse, error) {
	return defaultEvaluator.RunCrossover(context.Background(), req)
}

// Normalized fills the CLI defaults for a compare request (DNN
// domain, full platform set, the §4.2 reference scenario, a
// 12-application frontier), expands an empty platform list into the
// domain's explicit kind specs, and folds the legacy scenario fields
// into the workload — one cache entry per semantic request.
func (r CompareRequest) Normalized() CompareRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && needsDomain(r.Platforms) {
		r.Domain = "DNN"
	}
	if len(r.Platforms) == 0 {
		r.Platforms = domainKindSpecs(r.Domain)
	}
	if len(r.Platforms) > 0 {
		r.Domain = specDomains(r.Platforms, r.Domain)
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{NApps: r.NApps, LifetimeYears: r.LifetimeYears, Volume: r.Volume}
		r.NApps, r.LifetimeYears, r.Volume = 0, 0, 0
	}
	w := r.Workload.withUniformDefaults(5, 2, 1e6)
	r.Workload = &w
	if r.MaxApps == 0 {
		r.MaxApps = 12
	}
	return r
}

// MaxCompareApps bounds one compare request's frontier length, for
// the same reason as MaxSweepPoints.
const MaxCompareApps = 10_000

// RunCompare evaluates N platforms on a shared uniform scenario:
// per-platform assessments, pairwise total ratios, the minimum-CFP
// winner, and the winner per application count up to MaxApps. It
// matches `greenfpga compare -json` exactly. The frontier loop checks
// ctx per application count, so a cancelled request stops sweeping.
func (e *Evaluator) RunCompare(ctx context.Context, req CompareRequest) (*CompareResponse, error) {
	req = req.Normalized()
	if req.NApps != 0 || req.LifetimeYears != 0 || req.Volume != 0 {
		return nil, &Error{Code: "invalid_request",
			Message: "napps/lifetime_years/volume are legacy sugar for workload; use exactly one form"}
	}
	w, err := req.Workload.uniformArm("compare")
	if err != nil {
		return nil, err
	}
	if w.NApps < 1 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", w.NApps)}
	}
	if req.MaxApps < 1 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("max_apps must be >= 1, got %d", req.MaxApps)}
	}
	if req.MaxApps > MaxCompareApps {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("%d frontier points exceeds the %d limit", req.MaxApps, MaxCompareApps)}
	}
	stop := telemetry.StartStage(ctx, "resolve")
	cs, err := e.resolveAll(req.Platforms, req.Domain, "compare", 2)
	stop()
	if err != nil {
		return nil, err
	}

	defer telemetry.StartStage(ctx, "compute")()
	sc, err := cs.CompareUniform(w.NApps, units.YearsOf(w.LifetimeYears), w.Volume, w.SizeGates)
	if err != nil {
		return nil, err
	}
	resp := &CompareResponse{
		Domain: req.Domain, NApps: w.NApps,
		LifetimeYears: w.LifetimeYears, Volume: w.Volume,
		Winner: sc.WinnerAssessment().Platform,
	}
	for _, a := range sc.Assessments {
		resp.Platforms = append(resp.Platforms, *platformResult(a))
	}
	resp.Ratios = pairRatios(sc.Assessments, sc.Ratios)
	for n := 1; n <= req.MaxApps; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fsc, err := cs.CompareUniform(n, units.YearsOf(w.LifetimeYears), w.Volume, w.SizeGates)
		if err != nil {
			return nil, err
		}
		win := fsc.WinnerAssessment()
		resp.Frontier = append(resp.Frontier, FrontierPoint{
			NApps: n, Winner: win.Platform, TotalKg: win.Total().Kilograms(),
		})
	}
	return resp, nil
}

// RunCompare runs the request through the package-level evaluator
// under a background context.
func RunCompare(req CompareRequest) (*CompareResponse, error) {
	return defaultEvaluator.RunCompare(context.Background(), req)
}

// Normalized fills the CLI defaults for a timeline request, expands
// the platform list and the generator shorthand, folds the legacy
// timeline fields into the workload, and distributes a request-level
// chip-lifetime cap onto each platform spec's override — so a
// shorthand body and its spelled-out spec equivalent are one cache
// entry.
func (r TimelineRequest) Normalized() TimelineRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && needsDomain(r.Platforms) {
		r.Domain = "DNN"
	}
	if len(r.Platforms) == 0 {
		r.Platforms = domainKindSpecs(r.Domain)
	}
	if len(r.Platforms) > 0 {
		r.Domain = specDomains(r.Platforms, r.Domain)
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{
			NApps: r.NApps, IntervalYears: r.IntervalYears,
			LifetimeYears: r.LifetimeYears, Volume: r.Volume,
			Deployments: r.Deployments, Sizing: r.Sizing,
		}
		r.Deployments, r.NApps, r.IntervalYears, r.LifetimeYears, r.Volume, r.Sizing =
			nil, 0, 0, 0, 0, ""
	}
	if w, err := r.Workload.normalizedTimeline(); err == nil {
		r.Workload = &w
	}
	if r.ChipLifetimeYears > 0 {
		for i := range r.Platforms {
			if r.Platforms[i].ChipLifetimeYears == 0 {
				r.Platforms[i].ChipLifetimeYears = r.ChipLifetimeYears
			}
		}
		r.ChipLifetimeYears = 0
	}
	return r
}

// MaxTimelineDeployments bounds one timeline's deployment count, for
// the same reason as MaxSweepPoints.
const MaxTimelineDeployments = 10_000

// sequentialized re-packs the schedule's deployments back to back in
// arrival order — the legacy Eqs. 1–2 assumption — for the
// sequential-contrast columns of the timeline response.
func sequentialized(sch core.Schedule) core.Schedule {
	deps := append([]core.Deployment(nil), sch.Deployments...)
	sort.SliceStable(deps, func(i, j int) bool { return deps[i].Start < deps[j].Start })
	out := core.Schedule{Name: sch.Name + "-sequential", Sizing: sch.Sizing, StrictEq2: sch.StrictEq2}
	var at float64
	for _, d := range deps {
		d.Start = units.YearsOf(at)
		at += d.App.Lifetime.Years()
		out.Deployments = append(out.Deployments, d)
	}
	return out
}

// RunTimeline evaluates a time-phased deployment schedule on N
// platforms: per-platform assessments with fleet, refresh and
// concurrency quantities, pairwise ratios, the winner, and a
// sequential-accounting contrast per platform. It matches `greenfpga
// timeline -json` exactly. Chip-lifetime caps ride on the platform
// specs, so capped platforms are compiled once and content-addressed
// like any other spec instead of recompiled per request. The
// per-platform schedule evaluations check ctx between platforms.
func (e *Evaluator) RunTimeline(ctx context.Context, req TimelineRequest) (*TimelineResponse, error) {
	req = req.Normalized()
	if len(req.Deployments) > 0 || req.NApps != 0 || req.IntervalYears != 0 ||
		req.LifetimeYears != 0 || req.Volume != 0 || req.Sizing != "" {
		return nil, &Error{Code: "invalid_request",
			Message: "deployments/napps/interval_years/lifetime_years/volume/sizing are legacy sugar for workload; use exactly one form"}
	}
	w, err := req.Workload.normalizedTimeline()
	if err != nil {
		return nil, err
	}
	if w.NApps < 0 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", w.NApps)}
	}
	if len(w.Deployments) > MaxTimelineDeployments {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("more than %d deployments exceeds the limit", MaxTimelineDeployments)}
	}
	if req.ChipLifetimeYears < 0 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("negative chip lifetime %g", req.ChipLifetimeYears)}
	}
	stop := telemetry.StartStage(ctx, "resolve")
	cs, err := e.resolveAll(req.Platforms, req.Domain, "timeline", 2)
	stop()
	if err != nil {
		return nil, err
	}

	defer telemetry.StartStage(ctx, "compute")()
	sch := w.schedule(req.Domain + "-timeline")
	sc, err := cs.CompareSchedule(sch)
	if err != nil {
		return nil, ToError(err)
	}
	seq := sequentialized(sch)
	resp := &TimelineResponse{
		Domain:              req.Domain,
		Sizing:              w.Sizing,
		SpanYears:           sc.Span.Years(),
		SequentialSpanYears: seq.Span().Years(),
		PeakConcurrent:      sc.PeakConcurrent,
		Deployments:         w.Deployments,
		Winner:              sc.WinnerAssessment().Platform,
	}
	plain := make([]core.Assessment, len(sc.Assessments))
	for i, a := range sc.Assessments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plain[i] = a.Assessment
		sa, err := cs[i].EvaluateSchedule(seq)
		if err != nil {
			return nil, ToError(err)
		}
		resp.Platforms = append(resp.Platforms, TimelinePlatform{
			PlatformResult:    *platformResult(a.Assessment),
			PeakDemandDevices: a.PeakDemand,
			SequentialTotalKg: sa.Total().Kilograms(),
		})
	}
	resp.Ratios = pairRatios(plain, sc.Ratios)
	return resp, nil
}

// RunTimeline runs the request through the package-level evaluator
// under a background context.
func RunTimeline(req TimelineRequest) (*TimelineResponse, error) {
	return defaultEvaluator.RunTimeline(context.Background(), req)
}

// Normalized fills the per-axis CLI defaults, expands an empty
// platform list into the legacy {domain fpga, domain asic} pair, and
// canonicalizes the off-axis workload (the swept axis's own field is
// zeroed — its value comes from the axis), so bodies that spell the
// defaults out and bodies that omit them are one cache entry.
func (r SweepRequest) Normalized() SweepRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && needsDomain(r.Platforms) {
		r.Domain = "DNN"
	}
	if len(r.Platforms) == 0 {
		r.Platforms = []PlatformSpec{{Domain: r.Domain, Kind: "fpga"}, {Domain: r.Domain, Kind: "asic"}}
	}
	r.Domain = specDomains(r.Platforms, r.Domain)
	if r.Axis == "" {
		r.Axis = "napps"
	}
	switch r.Axis {
	case "napps":
		if r.From <= 0 {
			r.From = 1
		}
		if r.To <= 0 {
			r.To = 12
		}
		r.From, r.To = float64(int(r.From)), float64(int(r.To))
		r.Points = int(r.To-r.From) + 1
	case "lifetime":
		if r.From <= 0 {
			r.From = 0.2
		}
		if r.To <= 0 {
			r.To = 2.5
		}
		if r.Points <= 0 {
			r.Points = 24
		}
	case "volume":
		if r.From <= 0 {
			r.From = 1e3
		}
		if r.To <= 0 {
			r.To = 1e6
		}
		if r.Points <= 0 {
			r.Points = 13
		}
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{}
	}
	w := r.Workload.withUniformDefaults(5, 2, 1e6)
	switch r.Axis {
	case "napps":
		w.NApps = 0
	case "lifetime":
		w.LifetimeYears = 0
	case "volume":
		w.Volume = 0
	}
	r.Workload = &w
	return r
}

// MaxSweepPoints bounds one sweep's sample count: far above any
// plotting need, low enough that a single request cannot allocate
// unbounded memory on the service.
const MaxSweepPoints = 100_000

// MaxMonteCarloSamples bounds one uncertainty study for the same
// reason (draws cost ~microseconds each).
const MaxMonteCarloSamples = 1_000_000

// SweepAxis materializes the request's axis sample points.
func (r SweepRequest) SweepAxis() (sweep.Axis, error) {
	if r.From > r.To {
		return sweep.Axis{}, fmt.Errorf("empty sweep range: from %g > to %g", r.From, r.To)
	}
	if r.Points > MaxSweepPoints {
		return sweep.Axis{}, fmt.Errorf("%d sweep points exceeds the %d limit", r.Points, MaxSweepPoints)
	}
	switch r.Axis {
	case "napps":
		return sweep.Axis{Name: "Num Apps", Values: sweep.IntRange(int(r.From), int(r.To))}, nil
	case "lifetime":
		return sweep.Axis{Name: "App Lifetime [y]", Values: sweep.Linspace(r.From, r.To, r.Points)}, nil
	case "volume":
		return sweep.Axis{Name: "App Volume", Values: sweep.Logspace(r.From, r.To, r.Points), Log: true}, nil
	default:
		return sweep.Axis{}, fmt.Errorf("unknown axis %q (napps, lifetime, volume)", r.Axis)
	}
}

// legacyPairShape reports the paper's sweep shape — exactly the
// request domain's plain FPGA and ASIC members — which keeps the
// dedicated fpga_kg/asic_kg/ratio response fields; any other platform
// set carries per-platform totals instead.
func (r SweepRequest) legacyPairShape() bool {
	return len(r.Platforms) == 2 && r.Domain != "" &&
		r.Platforms[0].isPlainKind(r.Domain, "fpga") &&
		r.Platforms[1].isPlainKind(r.Domain, "asic")
}

// RunSweep runs a 1-D sweep over the request's platform set, matching
// `greenfpga sweep` exactly for the legacy domain-pair shape.
// Off-axis parameters come from the workload (CLI defaults:
// 5 applications, 2-year lifetime, 1e6 volume). Every sweep worker
// checks ctx before its point, so a cancelled request stops the grid
// instead of computing doomed cells.
func (e *Evaluator) RunSweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	st, err := e.prepareSweep(ctx, req)
	if err != nil {
		return nil, err
	}
	defer telemetry.StartStage(ctx, "compute")()
	pts, err := sweep.RunN(st.ax, len(st.cs), st.eval(ctx))
	if err != nil {
		return nil, err
	}
	return st.assemble(pts), nil
}

// sweepStudy is a validated, resolved sweep: the axis, the compiled
// platform set and the off-axis workload parameters — everything the
// point evaluation needs, with the evaluation itself left to the
// caller. RunSweep evaluates all points in one shot; the jobs layer
// evaluates index ranges (sweep.RunRangeN) and reassembles, which
// yields the identical response because point values depend only on
// the axis and the compiled set.
type sweepStudy struct {
	req SweepRequest // normalized
	ax  sweep.Axis
	w   WorkloadSpec
	cs  core.CompiledSet
}

// prepareSweep normalizes and validates the request and resolves its
// platform set (timing the resolve stage), without evaluating points.
func (e *Evaluator) prepareSweep(ctx context.Context, req SweepRequest) (*sweepStudy, error) {
	req = req.Normalized()
	ax, err := req.SweepAxis()
	if err != nil {
		return nil, err
	}
	w, err := req.Workload.uniformArm("sweep")
	if err != nil {
		return nil, err
	}
	stop := telemetry.StartStage(ctx, "resolve")
	cs, err := e.resolveAll(req.Platforms, req.Domain, "sweep", 1)
	stop()
	if err != nil {
		return nil, err
	}
	return &sweepStudy{req: req, ax: ax, w: w, cs: cs}, nil
}

// eval builds the per-point evaluator over the compiled set, bound to
// ctx so a cancelled request stops the grid instead of computing
// doomed cells.
func (st *sweepStudy) eval(ctx context.Context) sweep.SetEval {
	return func(x float64, totals []units.Mass) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		nApps, tY, v := st.w.NApps, st.w.LifetimeYears, st.w.Volume
		switch st.req.Axis {
		case "napps":
			nApps = int(x + 0.5)
		case "lifetime":
			tY = x
		case "volume":
			v = x
		}
		for i, c := range st.cs {
			m, err := c.UniformTotal(nApps, units.YearsOf(tY), v, st.w.SizeGates)
			if err != nil {
				return err
			}
			totals[i] = m
		}
		return nil
	}
}

// assemble shapes the evaluated points into the response document.
func (st *sweepStudy) assemble(pts []sweep.PointN) *SweepResponse {
	req := st.req
	resp := &SweepResponse{Domain: req.Domain, Axis: req.Axis, Points: make([]SweepPoint, len(pts))}
	if req.legacyPairShape() {
		for i, p := range pts {
			f, a := p.Totals[0], p.Totals[1]
			ratio := math.Inf(1)
			if a != 0 {
				ratio = f.Kilograms() / a.Kilograms()
			}
			resp.Points[i] = SweepPoint{
				X: p.X, FPGAKg: f.Kilograms(), ASICKg: a.Kilograms(), Ratio: ratio,
			}
		}
		return resp
	}
	for _, c := range st.cs {
		resp.Platforms = append(resp.Platforms, c.Platform().Spec.Name)
	}
	for i, p := range pts {
		totals := make([]float64, len(p.Totals))
		for j, m := range p.Totals {
			totals[j] = m.Kilograms()
		}
		resp.Points[i] = SweepPoint{X: p.X, TotalsKg: totals}
	}
	return resp
}

// RunSweep runs the request through the package-level evaluator under
// a background context.
func RunSweep(req SweepRequest) (*SweepResponse, error) {
	return defaultEvaluator.RunSweep(context.Background(), req)
}

// Normalized fills the CLI defaults (2000 samples, seed 1, 5 apps,
// DNN domain, FPGA-vs-ASIC pair) and expands the legacy fields into
// the spec form.
func (r MonteCarloRequest) Normalized() MonteCarloRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && needsDomain(r.Platforms) {
		r.Domain = "DNN"
	}
	if len(r.Platforms) == 0 {
		r.Platforms = []PlatformSpec{{Domain: r.Domain, Kind: "fpga"}, {Domain: r.Domain, Kind: "asic"}}
	}
	r.Domain = specDomains(r.Platforms, r.Domain)
	if r.Samples == 0 {
		r.Samples = 2000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{NApps: r.NApps}
		r.NApps = 0
	}
	w := r.Workload.withUniformDefaults(5, 0, 0)
	r.Workload = &w
	return r
}

// RunMonteCarlo propagates the Table 1 uncertainty ranges through the
// CFP ratio of two platforms of one domain set, matching `greenfpga
// mc` exactly for the legacy FPGA:ASIC shape. Because the draws
// perturb the domain calibration itself (duty cycle, design staffing,
// the FPGA app-dev flow), the platforms must be plain kind selectors
// of a single domain.
func (e *Evaluator) RunMonteCarlo(ctx context.Context, req MonteCarloRequest) (*MonteCarloResponse, error) {
	m, err := e.prepareMonteCarlo(ctx, req)
	if err != nil {
		return nil, err
	}
	defer telemetry.StartStage(ctx, "compute")()
	res, err := greenfpga.RunMonteCarlo(m.config(ctx))
	if err != nil {
		return nil, err
	}
	return m.assemble(res), nil
}

// mcStudy is a validated, resolved Monte-Carlo study: the domain
// calibration, the two plain platform kinds and the draw plan. The
// draw evaluation itself is left to the caller: RunMonteCarlo runs it
// in one shot; the jobs layer evaluates index ranges of the same
// config (montecarlo.RunRange) and finalizes the concatenation, which
// is bit-identical because every draw is sub-seeded by its index.
type mcStudy struct {
	req   MonteCarloRequest // normalized
	d     greenfpga.Domain
	a, b  PlatformSpec
	nApps int
}

// prepareMonteCarlo normalizes and validates the request and resolves
// the domain calibration (timing the resolve stage), without running
// any draws.
func (e *Evaluator) prepareMonteCarlo(ctx context.Context, req MonteCarloRequest) (*mcStudy, error) {
	req = req.Normalized()
	if req.NApps != 0 {
		return nil, &Error{Code: "invalid_request",
			Message: "napps is legacy sugar for workload; use exactly one form"}
	}
	w, err := req.Workload.uniformArm("mc")
	if err != nil {
		return nil, err
	}
	if w.LifetimeYears != 0 || w.Volume != 0 || w.SizeGates != 0 {
		return nil, &Error{Code: "invalid_request",
			Message: "mc draws the application lifetime from Table 1 and fixes the reference volume; the workload sets napps only"}
	}
	if req.Samples > MaxMonteCarloSamples {
		return nil, fmt.Errorf("%d samples exceeds the %d limit", req.Samples, MaxMonteCarloSamples)
	}
	if len(req.Platforms) != 2 {
		return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"mc studies the ratio of exactly two platforms, got %d", len(req.Platforms))}
	}
	for _, sp := range req.Platforms {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		if sp.Kind == "" || sp.hasOverrides() {
			return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"mc draws Table 1 ranges around a domain calibration; platform %s must be a plain domain kind (fpga, asic, gpu, cpu)",
				sp.describe())}
		}
	}
	a, b := req.Platforms[0], req.Platforms[1]
	if a.Kind == b.Kind {
		return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"cannot study %q against itself", a.Kind)}
	}
	if req.Domain == "" {
		return nil, &Error{Code: "invalid_request",
			Message: "mc platforms must share one domain calibration"}
	}
	stop := telemetry.StartStage(ctx, "resolve")
	d, err := isoperf.ByName(req.Domain)
	stop()
	if err != nil {
		return nil, err
	}
	return &mcStudy{req: req, d: d, a: a, b: b, nApps: w.NApps}, nil
}

// config builds the study's Monte-Carlo configuration bound to ctx
// (the model closure checks it per draw).
func (m *mcStudy) config(ctx context.Context) greenfpga.MCConfig {
	return greenfpga.DomainRatioStudyConfig(ctx, m.d,
		greenfpga.DeviceKind(m.a.Kind), greenfpga.DeviceKind(m.b.Kind),
		m.nApps, m.req.Samples, m.req.Seed)
}

// assemble shapes a finalized study result into the response document.
func (m *mcStudy) assemble(res greenfpga.MCResult) *MonteCarloResponse {
	wins := 0
	for _, s := range res.Samples {
		if s < 1 {
			wins++
		}
	}
	resp := &MonteCarloResponse{
		Domain: m.d.Name, Samples: m.req.Samples, Seed: m.req.Seed, NApps: m.nApps,
		Mean: res.Mean, StdDev: res.StdDev,
		Percentiles: Percentiles{
			P5:  res.Percentile(5),
			P25: res.Percentile(25),
			P50: res.Percentile(50),
			P75: res.Percentile(75),
			P95: res.Percentile(95),
		},
		ProbFPGAWins: float64(wins) / float64(len(res.Samples)),
	}
	if !(m.a.isPlainKind(m.req.Domain, "fpga") && m.b.isPlainKind(m.req.Domain, "asic")) {
		resp.PlatformA, resp.PlatformB = m.a.Kind, m.b.Kind
	}
	for _, s := range res.Tornado {
		resp.Tornado = append(resp.Tornado, TornadoEntry{Param: s.Param, Swing: s.Swing()})
	}
	return resp
}

// RunMonteCarlo runs the request through the package-level evaluator
// under a background context.
func RunMonteCarlo(req MonteCarloRequest) (*MonteCarloResponse, error) {
	return defaultEvaluator.RunMonteCarlo(context.Background(), req)
}

// Devices returns the Table 3 catalog in JSON form.
func Devices() DeviceList {
	var out DeviceList
	for _, s := range device.Catalog() {
		out.Devices = append(out.Devices, Device{
			Name:          s.Name,
			Kind:          string(s.Kind),
			Node:          s.Node.Name,
			DieAreaMM2:    s.DieArea.MM2(),
			PeakPowerW:    s.PeakPower.Watts(),
			CapacityGates: s.CapacityGates,
			BasedOn:       s.BasedOn,
		})
	}
	return out
}

// Domains returns the Table 2 testcases in JSON form.
func Domains() DomainList {
	var out DomainList
	for _, d := range isoperf.Domains() {
		out.Domains = append(out.Domains, Domain{
			Name:            d.Name,
			AreaRatio:       d.AreaRatio,
			PowerRatio:      d.PowerRatio,
			ASICAreaMM2:     d.ASICArea.MM2(),
			ASICPeakPowerW:  d.ASICPeakPower.Watts(),
			DutyCycle:       d.DutyCycle,
			DesignEngineers: d.DesignEngineers,
		})
	}
	return out
}

// Regions returns the carbon registry — scalar grid presets plus the
// traced hourly-signal regions — in JSON form.
func Regions() RegionList {
	var out RegionList
	for _, r := range carbon.Regions() {
		ci, _ := r.Intensity()
		entry := Region{
			Name:             r.Name,
			Description:      r.Description,
			Traced:           r.Traced,
			IntensityGPerKWh: ci.GramsPerKWh(),
		}
		if r.Traced {
			if t, err := r.Trace(); err == nil {
				entry.MeanGPerKWh = t.Mean().GramsPerKWh()
				lo, hi := t.Bounds()
				entry.MinGPerKWh = lo.GramsPerKWh()
				entry.MaxGPerKWh = hi.GramsPerKWh()
			}
		}
		out.Regions = append(out.Regions, entry)
	}
	return out
}

// fleetMaxApps bounds the per-region A2F crossover search, the same
// ceiling the crossover endpoint defaults to.
const fleetMaxApps = 30

// Normalized fills the CLI defaults for a fleet request (DNN domain,
// FPGA-vs-ASIC pair, every registry region, the §4.2 reference
// workload), so spelled-out and omitted defaults share one cache
// entry.
func (r FleetRequest) Normalized() FleetRequest {
	r.Platforms = append([]PlatformSpec(nil), r.Platforms...)
	if r.Domain == "" && needsDomain(r.Platforms) {
		r.Domain = "DNN"
	}
	if len(r.Platforms) == 0 {
		r.Platforms = []PlatformSpec{{Domain: r.Domain, Kind: "fpga"}, {Domain: r.Domain, Kind: "asic"}}
	}
	r.Domain = specDomains(r.Platforms, r.Domain)
	if len(r.Regions) == 0 {
		r.Regions = carbon.Names()
	} else {
		r.Regions = append([]string(nil), r.Regions...)
	}
	if r.Workload == nil {
		r.Workload = &WorkloadSpec{}
	}
	w := r.Workload.withUniformDefaults(5, 2, 1e6)
	r.Workload = &w
	return r
}

// fleetStudy is a validated, resolved siting study: the candidate
// regions, the workload, and each platform compiled in each region
// (cells[region][platform]). The region evaluations are independent,
// which is what lets the jobs layer run one chunk per region and
// reassemble the identical response.
type fleetStudy struct {
	req     FleetRequest // normalized
	w       WorkloadSpec
	regions []carbon.Region
	means   []float64 // mean g/kWh per region (trace mean or scalar)
	names   []string  // platform names, cell order
	cells   [][]*core.Compiled
}

// prepareFleet normalizes and validates the request and compiles every
// (region, platform) cell — through the content-addressed spec cache,
// so two studies over overlapping grids share compilations — without
// evaluating anything.
func (e *Evaluator) prepareFleet(ctx context.Context, req FleetRequest) (*fleetStudy, error) {
	req = req.Normalized()
	w, err := req.Workload.uniformArm("fleet")
	if err != nil {
		return nil, err
	}
	if w.NApps < 1 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", w.NApps)}
	}
	switch req.Shift {
	case "", carbon.ShiftDaily:
	default:
		return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"unknown shift policy %q (valid: %s)", req.Shift, carbon.ShiftDaily)}
	}
	st := &fleetStudy{req: req, w: w}
	seenRegion := make(map[string]bool, len(req.Regions))
	for _, name := range req.Regions {
		reg, err := carbon.ByName(name)
		if err != nil {
			return nil, &Error{Code: "invalid_request", Message: err.Error()}
		}
		if seenRegion[reg.Name] {
			return nil, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("duplicate region %q", reg.Name)}
		}
		seenRegion[reg.Name] = true
		mean, err := reg.Intensity()
		if err != nil {
			return nil, err
		}
		if reg.Traced {
			t, err := reg.Trace()
			if err != nil {
				return nil, err
			}
			mean = t.Mean()
		}
		st.regions = append(st.regions, reg)
		st.means = append(st.means, mean.GramsPerKWh())
	}
	seenSpec := make(map[string]bool, len(req.Platforms))
	for _, sp := range req.Platforms {
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		if sp.UseRegion != "" || sp.Trace != nil || sp.Shift != "" {
			return nil, &Error{Code: "invalid_request", Message: fmt.Sprintf(
				"fleet sites each platform in every candidate region; platform spec %s cannot carry its own region, trace or shift",
				sp.describe())}
		}
		key, err := CanonicalKey("spec", sp)
		if err != nil {
			return nil, err
		}
		if seenSpec[key] {
			return nil, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("duplicate platform %s", sp.describe())}
		}
		seenSpec[key] = true
	}
	stop := telemetry.StartStage(ctx, "resolve")
	defer stop()
	st.cells = make([][]*core.Compiled, len(st.regions))
	for ri, reg := range st.regions {
		st.cells[ri] = make([]*core.Compiled, len(req.Platforms))
		for pi, sp := range req.Platforms {
			sited := sp
			sited.UseRegion = reg.Name
			if reg.Traced {
				sited.Shift = req.Shift
			}
			c, err := e.resolveSpec(sited)
			if err != nil {
				return nil, fmt.Errorf("platform %s in %s: %w", sp.describe(), reg.Name, err)
			}
			st.cells[ri][pi] = c
			if ri == 0 {
				st.names = append(st.names, c.Platform().Spec.Name)
			}
		}
	}
	return st, nil
}

// width is the per-region payload length: (total, operation, embodied)
// per platform, plus the crossover solve pair when the study sites
// exactly two platforms.
func (st *fleetStudy) width() int {
	n := 3 * len(st.names)
	if len(st.names) == 2 {
		n += 2
	}
	return n
}

// evalRegion evaluates region ri's full platform row — the shared
// uniform scenario per platform plus the pairwise A2F crossover — as a
// flat float vector, the unit the jobs layer checkpoints.
func (st *fleetStudy) evalRegion(ctx context.Context, ri int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	life := units.YearsOf(st.w.LifetimeYears)
	out := make([]float64, 0, st.width())
	for _, c := range st.cells[ri] {
		a, err := c.EvaluateUniform(st.w.NApps, life, st.w.Volume, st.w.SizeGates)
		if err != nil {
			return nil, err
		}
		total := a.Total().Kilograms()
		op := a.Breakdown.Operation.Kilograms()
		out = append(out, total, op, total-op)
	}
	if len(st.cells[ri]) == 2 {
		n, found, err := core.CrossoverNumAppsBetween(
			st.cells[ri][0], st.cells[ri][1], life, st.w.Volume, st.w.SizeGates, fleetMaxApps)
		if err != nil {
			return nil, err
		}
		f := 0.0
		if found {
			f = 1
		}
		out = append(out, f, float64(n))
	}
	return out, nil
}

// assemble shapes the per-region vectors into the response document.
func (st *fleetStudy) assemble(rows [][]float64) *FleetResponse {
	nP := len(st.names)
	resp := &FleetResponse{
		Domain:    st.req.Domain,
		Shift:     st.req.Shift,
		Platforms: st.names,
		Best:      FleetBest{TotalKg: math.Inf(1)},
	}
	bestBy := make([]FleetBest, nP)
	for i := range bestBy {
		bestBy[i].TotalKg = math.Inf(1)
	}
	for ri, reg := range st.regions {
		vals := rows[ri]
		row := FleetRegionRow{
			Region:      reg.Name,
			Traced:      reg.Traced,
			MeanGPerKWh: st.means[ri],
			Cells:       make([]FleetCell, nP),
		}
		win := 0
		for pi := 0; pi < nP; pi++ {
			cell := FleetCell{
				TotalKg:     vals[3*pi],
				OperationKg: vals[3*pi+1],
				EmbodiedKg:  vals[3*pi+2],
			}
			row.Cells[pi] = cell
			if cell.TotalKg < row.Cells[win].TotalKg {
				win = pi
			}
			if cell.TotalKg < bestBy[pi].TotalKg {
				bestBy[pi] = FleetBest{Region: reg.Name, Platform: st.names[pi], TotalKg: cell.TotalKg}
			}
			if cell.TotalKg < resp.Best.TotalKg {
				resp.Best = FleetBest{Region: reg.Name, Platform: st.names[pi], TotalKg: cell.TotalKg}
			}
		}
		row.Winner = st.names[win]
		if nP == 2 {
			s := Solve{Found: vals[3*nP] != 0}
			if s.Found {
				s.Value = vals[3*nP+1]
			}
			row.A2FNumApps = &s
		}
		resp.Regions = append(resp.Regions, row)
	}
	resp.BestByPlatform = bestBy
	return resp
}

// RunFleet runs a carbon-aware placement study: every platform sited
// in every candidate region on a shared uniform scenario, with the
// minimum-CFP placements and the per-region grid-aware crossovers. It
// matches `greenfpga fleet -json` exactly; scalar regions run the
// legacy closed-form path, traced regions integrate their hourly
// signal. The per-region evaluations check ctx between regions.
func (e *Evaluator) RunFleet(ctx context.Context, req FleetRequest) (*FleetResponse, error) {
	st, err := e.prepareFleet(ctx, req)
	if err != nil {
		return nil, err
	}
	defer telemetry.StartStage(ctx, "compute")()
	rows := make([][]float64, len(st.regions))
	for i := range rows {
		vals, err := st.evalRegion(ctx, i)
		if err != nil {
			return nil, err
		}
		rows[i] = vals
	}
	return st.assemble(rows), nil
}

// RunFleet runs the request through the package-level evaluator under
// a background context.
func RunFleet(req FleetRequest) (*FleetResponse, error) {
	return defaultEvaluator.RunFleet(context.Background(), req)
}

// Experiments returns the paper-artifact registry IDs in run order.
func Experiments() ExperimentList {
	return ExperimentList{Experiments: experiments.List()}
}

// Experiment regenerates one paper artifact in JSON form.
func Experiment(id string) (*ExperimentResult, error) {
	out, err := experiments.Run(id)
	if err != nil {
		return nil, err
	}
	res := &ExperimentResult{ID: out.ID, Title: out.Title, Charts: out.Charts, Notes: out.Notes}
	for _, t := range out.Tables {
		res.Tables = append(res.Tables, ExperimentTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return res, nil
}

// encBuffers pools the encode-side scratch buffers: the server's miss
// path and the CLI's -json modes encode every response through one of
// these instead of allocating a fresh buffer per request.
var encBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeTo appends v's canonical encoding — compact, HTML escaping
// off, trailing newline — to buf. It is the single definition of the
// service's wire encoding; WriteJSON and EncodeJSON are its two
// callers (write-through vs retain).
func encodeTo(buf *bytes.Buffer, v any) error {
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// EncodeJSON returns v's canonical encoding as a fresh byte slice —
// the exact bytes WriteJSON would write, safe to retain indefinitely
// (the server's result cache stores these, and cached bytes are
// immutable by contract). The encode itself runs through a pooled
// buffer, so steady-state misses allocate only the retained copy.
func EncodeJSON(v any) ([]byte, error) {
	buf := encBuffers.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBuffers.Put(buf)
	}()
	if err := encodeTo(buf, v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// WriteJSON encodes v the service's canonical way — compact, HTML
// escaping off, trailing newline. The CLI's -json modes and every
// server handler use it, which is what makes their outputs
// byte-identical. The encode lands in a pooled buffer and reaches w
// as one Write (buffers are written into directly).
func WriteJSON(w io.Writer, v any) error {
	if buf, ok := w.(*bytes.Buffer); ok {
		return encodeTo(buf, v)
	}
	buf := encBuffers.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBuffers.Put(buf)
	}()
	if err := encodeTo(buf, v); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ToError coerces any compute error into the service's error
// envelope: *Error values pass through, context errors become the
// deadline_exceeded / canceled codes (the request was fine; its time
// ran out), and everything else becomes an invalid_request (every
// other Run* failure is a property of the request — an unknown
// domain, an invalid scenario — not of the server).
func ToError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{Code: "deadline_exceeded",
			Message: "request deadline exceeded before the evaluation finished"}
	}
	if errors.Is(err, context.Canceled) {
		return &Error{Code: "canceled", Message: "request canceled before the evaluation finished"}
	}
	return &Error{Code: "invalid_request", Message: err.Error()}
}
