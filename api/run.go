package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"greenfpga"

	"greenfpga/internal/cache"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/experiments"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

// Evaluator runs scenario evaluations with a content-addressed cache
// of compiled platforms: two requests describing the same platform —
// regardless of scenario — share one core.Compile, so repeated and
// swept queries hit the compiled fast path. An Evaluator is safe for
// concurrent use.
type Evaluator struct {
	compiled *cache.LRU
}

// NewEvaluator returns an Evaluator whose compiled-platform cache
// holds at most maxCompiled entries.
func NewEvaluator(maxCompiled int) *Evaluator {
	return &Evaluator{compiled: cache.New(maxCompiled)}
}

// defaultEvaluator backs the package-level Evaluate used by the CLI.
var defaultEvaluator = NewEvaluator(64)

// CompileStats returns the compiled-platform cache's cumulative hit
// and miss counts.
func (e *Evaluator) CompileStats() (hits, misses uint64) { return e.compiled.Stats() }

// compiledPlatform resolves a platform config to a compiled platform,
// keyed by the config's canonical JSON.
func (e *Evaluator) compiledPlatform(pc *PlatformConfig) (*core.Compiled, error) {
	key, err := CanonicalKey("platform", pc)
	if err != nil {
		return nil, err
	}
	if v, ok := e.compiled.Get(key); ok {
		return v.(*core.Compiled), nil
	}
	p, err := pc.ToPlatform()
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(p)
	if err != nil {
		return nil, err
	}
	e.compiled.Put(key, c)
	return c, nil
}

// platformResult converts an assessment to its JSON form.
func platformResult(a core.Assessment) *PlatformResult {
	b := a.Breakdown
	return &PlatformResult{
		Platform: a.Platform,
		Kind:     string(a.Kind),
		TotalKg:  a.Total().Kilograms(),
		Breakdown: Breakdown{
			DesignKg:         b.Design.Kilograms(),
			ManufacturingKg:  b.Manufacturing.Kilograms(),
			PackagingKg:      b.Packaging.Kilograms(),
			EOLKg:            b.EOL.Kilograms(),
			OperationKg:      b.Operation.Kilograms(),
			AppDevelopmentKg: b.AppDevelopment.Kilograms(),
			ConfigurationKg:  b.Configuration.Kilograms(),
			TotalKg:          b.Total().Kilograms(),
		},
		DevicesManufactured: a.DevicesManufactured,
		FleetSize:           a.FleetSize,
		HardwareGenerations: a.HardwareGenerations,
	}
}

// Evaluate assesses the request's scenario on its platform(s),
// matching `greenfpga run` exactly.
func (e *Evaluator) Evaluate(req *EvaluateRequest) (*EvaluateResponse, error) {
	if req == nil || req.Scenario == nil {
		return nil, &Error{Code: "invalid_request", Message: "missing scenario"}
	}
	cfg := req.Scenario
	scen, err := cfg.ToScenario()
	if err != nil {
		return nil, err
	}
	if cfg.FPGA == nil && cfg.ASIC == nil {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("scenario %q needs at least one platform", cfg.Name)}
	}
	resp := &EvaluateResponse{Scenario: scen.Name}
	if cfg.FPGA != nil {
		c, err := e.compiledPlatform(cfg.FPGA)
		if err != nil {
			return nil, fmt.Errorf("fpga: %w", err)
		}
		a, err := c.Evaluate(scen)
		if err != nil {
			return nil, fmt.Errorf("fpga: %w", err)
		}
		resp.FPGA = platformResult(a)
	}
	if cfg.ASIC != nil {
		c, err := e.compiledPlatform(cfg.ASIC)
		if err != nil {
			return nil, fmt.Errorf("asic: %w", err)
		}
		a, err := c.Evaluate(scen)
		if err != nil {
			return nil, fmt.Errorf("asic: %w", err)
		}
		resp.ASIC = platformResult(a)
	}
	if resp.FPGA != nil && resp.ASIC != nil {
		if resp.ASIC.TotalKg != 0 {
			r := resp.FPGA.TotalKg / resp.ASIC.TotalKg
			resp.Ratio = &r
		}
		resp.Verdict = "asic"
		if resp.FPGA.TotalKg < resp.ASIC.TotalKg {
			resp.Verdict = "fpga"
		}
	}
	return resp, nil
}

// Evaluate runs the request through the package-level evaluator (the
// CLI path; the server holds its own long-lived Evaluator).
func Evaluate(req *EvaluateRequest) (*EvaluateResponse, error) {
	return defaultEvaluator.Evaluate(req)
}

// domainSets memoizes compiled iso-performance platform sets by
// canonical domain name; the calibrated domains are immutable, so the
// cache never invalidates. The set's FPGA/ASIC members double as the
// legacy pair, so the crossover and sweep endpoints share these
// compilations with /v1/compare.
var domainSets sync.Map

// compiledDomainSet resolves and compiles a Table 2 domain's full
// platform set (FPGA, ASIC, then the domain's GPU/CPU calibrations).
func compiledDomainSet(name string) (core.CompiledSet, isoperf.Domain, error) {
	d, err := isoperf.ByName(name)
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	if v, ok := domainSets.Load(d.Name); ok {
		return v.(core.CompiledSet), d, nil
	}
	set, err := d.Set()
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	cs, err := set.Compile()
	if err != nil {
		return nil, isoperf.Domain{}, err
	}
	domainSets.Store(d.Name, cs)
	return cs, d, nil
}

// compiledDomain views a domain set's FPGA/ASIC members as the legacy
// pair the crossover and sweep endpoints solve over.
func compiledDomain(name string) (core.CompiledPair, isoperf.Domain, error) {
	cs, d, err := compiledDomainSet(name)
	if err != nil {
		return core.CompiledPair{}, isoperf.Domain{}, err
	}
	return core.CompiledPair{FPGA: cs[0], ASIC: cs[1]}, d, nil
}

// setMember finds the set platform of the given kind.
func setMember(cs core.CompiledSet, kind string) (*core.Compiled, error) {
	kinds := make([]string, len(cs))
	for i, c := range cs {
		kinds[i] = string(c.Platform().Spec.Kind)
		if kinds[i] == kind {
			return c, nil
		}
	}
	return nil, &Error{Code: "invalid_request",
		Message: fmt.Sprintf("domain set has no %q platform (have: %v)", kind, kinds)}
}

// selectPlatforms restricts and orders a compiled set by kind
// selectors ("fpga", "asic", ...); empty selectors keep the full set.
// At least two platforms must remain; what names the endpoint in the
// error.
func selectPlatforms(cs core.CompiledSet, kinds []string, what string) (core.CompiledSet, error) {
	if len(kinds) > 0 {
		picked := make(core.CompiledSet, 0, len(kinds))
		seen := map[string]bool{}
		for _, kind := range kinds {
			if seen[kind] {
				return nil, &Error{Code: "invalid_request",
					Message: fmt.Sprintf("duplicate platform %q", kind)}
			}
			seen[kind] = true
			c, err := setMember(cs, kind)
			if err != nil {
				return nil, err
			}
			picked = append(picked, c)
		}
		cs = picked
	}
	if len(cs) < 2 {
		return nil, &Error{Code: "invalid_request",
			Message: what + " needs at least two platforms"}
	}
	return cs, nil
}

// pairRatios lists the upper-triangle pairwise total ratios of a
// comparison. Zero-total denominators (impossible for physical
// platforms) are skipped rather than encoded as +Inf, which canonical
// JSON cannot carry.
func pairRatios(as []core.Assessment, ratios [][]float64) []PairRatio {
	var out []PairRatio
	for i := range as {
		for j := i + 1; j < len(as); j++ {
			if as[j].Total() == 0 {
				continue
			}
			out = append(out, PairRatio{A: as[i].Platform, B: as[j].Platform, Ratio: ratios[i][j]})
		}
	}
	return out
}

// Normalized returns the request with zero fields replaced by the CLI
// defaults. The server hashes normalized requests, so an explicit
// {"domain":"DNN"} and an empty body are the same cache entry.
func (r CrossoverRequest) Normalized() CrossoverRequest {
	if r.Domain == "" {
		r.Domain = "DNN"
	}
	if r.LifetimeYears == 0 {
		r.LifetimeYears = 2
	}
	if r.NApps == 0 {
		r.NApps = 5
	}
	if r.Volume == 0 {
		r.Volume = 1e6
	}
	if r.MaxApps == 0 {
		r.MaxApps = 30
	}
	return r
}

// RunCrossover answers the three §4.2 crossover questions for a
// domain, matching `greenfpga crossover` exactly. The optional
// platform selectors swap the paper's FPGA/ASIC operands for any two
// platforms of the domain's set, solved through the generalized
// CrossoverBetween solvers.
func RunCrossover(req CrossoverRequest) (*CrossoverResponse, error) {
	req = req.Normalized()
	cs, d, err := compiledDomainSet(req.Domain)
	if err != nil {
		return nil, err
	}
	a, b := cs[0], cs[1] // the paper's FPGA-vs-ASIC default
	resp := &CrossoverResponse{Domain: d.Name}
	if req.PlatformA != "" || req.PlatformB != "" {
		if req.PlatformA == "" || req.PlatformB == "" {
			return nil, &Error{Code: "invalid_request",
				Message: "platform_a and platform_b must be set together"}
		}
		if req.PlatformA == req.PlatformB {
			return nil, &Error{Code: "invalid_request",
				Message: fmt.Sprintf("cannot solve %q against itself", req.PlatformA)}
		}
		if a, err = setMember(cs, req.PlatformA); err != nil {
			return nil, err
		}
		if b, err = setMember(cs, req.PlatformB); err != nil {
			return nil, err
		}
		resp.PlatformA, resp.PlatformB = req.PlatformA, req.PlatformB
	}
	n, found, err := core.CrossoverNumAppsBetween(a, b, units.YearsOf(req.LifetimeYears), req.Volume, 0, req.MaxApps)
	if err != nil {
		return nil, err
	}
	if found {
		resp.A2FNumApps = Solve{Found: true, Value: float64(n)}
	}
	t, found, err := core.CrossoverLifetimeBetween(a, b, req.NApps, req.Volume, 0, units.YearsOf(0.05), units.YearsOf(10))
	if err != nil {
		return nil, err
	}
	if found {
		resp.F2ALifetimeYears = Solve{Found: true, Value: t.Years()}
	}
	v, found, err := core.CrossoverVolumeBetween(a, b, req.NApps, units.YearsOf(req.LifetimeYears), 0, 1e2, 1e8)
	if err != nil {
		return nil, err
	}
	if found {
		resp.F2AVolume = Solve{Found: true, Value: v}
	}
	return resp, nil
}

// Normalized fills the CLI defaults for a compare request (DNN
// domain, full platform set, the §4.2 reference scenario, a
// 12-application frontier).
func (r CompareRequest) Normalized() CompareRequest {
	if r.Domain == "" {
		r.Domain = "DNN"
	}
	if r.NApps == 0 {
		r.NApps = 5
	}
	if r.LifetimeYears == 0 {
		r.LifetimeYears = 2
	}
	if r.Volume == 0 {
		r.Volume = 1e6
	}
	if r.MaxApps == 0 {
		r.MaxApps = 12
	}
	return r
}

// MaxCompareApps bounds one compare request's frontier length, for
// the same reason as MaxSweepPoints.
const MaxCompareApps = 10_000

// RunCompare evaluates N platforms of a domain set on a shared
// uniform scenario: per-platform assessments, pairwise total ratios,
// the minimum-CFP winner, and the winner per application count up to
// MaxApps. It matches `greenfpga compare -json` exactly.
func RunCompare(req CompareRequest) (*CompareResponse, error) {
	req = req.Normalized()
	if req.NApps < 1 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", req.NApps)}
	}
	if req.MaxApps < 1 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("max_apps must be >= 1, got %d", req.MaxApps)}
	}
	if req.MaxApps > MaxCompareApps {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("%d frontier points exceeds the %d limit", req.MaxApps, MaxCompareApps)}
	}
	cs, d, err := compiledDomainSet(req.Domain)
	if err != nil {
		return nil, err
	}
	if cs, err = selectPlatforms(cs, req.Platforms, "compare"); err != nil {
		return nil, err
	}

	sc, err := cs.CompareUniform(req.NApps, units.YearsOf(req.LifetimeYears), req.Volume, 0)
	if err != nil {
		return nil, err
	}
	resp := &CompareResponse{
		Domain: d.Name, NApps: req.NApps,
		LifetimeYears: req.LifetimeYears, Volume: req.Volume,
		Winner: sc.WinnerAssessment().Platform,
	}
	for _, a := range sc.Assessments {
		resp.Platforms = append(resp.Platforms, *platformResult(a))
	}
	resp.Ratios = pairRatios(sc.Assessments, sc.Ratios)
	for n := 1; n <= req.MaxApps; n++ {
		fsc, err := cs.CompareUniform(n, units.YearsOf(req.LifetimeYears), req.Volume, 0)
		if err != nil {
			return nil, err
		}
		win := fsc.WinnerAssessment()
		resp.Frontier = append(resp.Frontier, FrontierPoint{
			NApps: n, Winner: win.Platform, TotalKg: win.Total().Kilograms(),
		})
	}
	return resp, nil
}

// Normalized fills the CLI defaults for a timeline request and
// expands the staggered-arrival generator shorthand into explicit
// deployments, so a shorthand body and its spelled-out equivalent are
// one cache entry. Explicit deployments win over the generator fields,
// which are cleared either way; empty deployment names become "app1",
// "app2", ... in timeline order.
func (r TimelineRequest) Normalized() TimelineRequest {
	if r.Domain == "" {
		r.Domain = "DNN"
	}
	if r.Sizing == "" {
		r.Sizing = string(core.SizeShared)
	}
	switch {
	case len(r.Deployments) == 0 && r.NApps >= 0:
		n := r.NApps
		if n == 0 {
			n = 5
		}
		// Expansion is bounded regardless of the requested count: one
		// entry past the limit is enough for RunTimeline to reject the
		// request, and a 2e9-app body must not allocate 2e9 structs
		// here (normalization runs before any cap check).
		if n > MaxTimelineDeployments {
			n = MaxTimelineDeployments + 1
		}
		interval := r.IntervalYears
		if interval == 0 {
			interval = 0.5
		}
		lifetime := r.LifetimeYears
		if lifetime == 0 {
			lifetime = 2
		}
		volume := r.Volume
		if volume == 0 {
			volume = 1e6
		}
		for i := 0; i < n; i++ {
			r.Deployments = append(r.Deployments, TimelineDeployment{
				StartYears:    float64(i) * interval,
				LifetimeYears: lifetime,
				Volume:        volume,
			})
		}
		r.NApps, r.IntervalYears, r.LifetimeYears, r.Volume = 0, 0, 0, 0
	case len(r.Deployments) > 0:
		// Explicit deployments win over the generator fields. The copy
		// keeps re-normalizing from sharing the input's backing array.
		r.Deployments = append([]TimelineDeployment(nil), r.Deployments...)
		r.NApps, r.IntervalYears, r.LifetimeYears, r.Volume = 0, 0, 0, 0
	default:
		// Negative NApps is preserved un-expanded so RunTimeline can
		// reject it like RunCompare does, rather than silently serving
		// the default timeline for a client typo.
	}
	for i := range r.Deployments {
		if r.Deployments[i].Name == "" {
			r.Deployments[i].Name = fmt.Sprintf("app%d", i+1)
		}
	}
	return r
}

// MaxTimelineDeployments bounds one timeline's deployment count, for
// the same reason as MaxSweepPoints.
const MaxTimelineDeployments = 10_000

// schedule materializes the request's core.Schedule.
func (r TimelineRequest) schedule() core.Schedule {
	sch := core.Schedule{Name: r.Domain + "-timeline", Sizing: core.FleetSizing(r.Sizing)}
	for _, d := range r.Deployments {
		sch.Deployments = append(sch.Deployments, core.Deployment{
			App: core.Application{
				Name:      d.Name,
				Lifetime:  units.YearsOf(d.LifetimeYears),
				Volume:    d.Volume,
				SizeGates: d.SizeGates,
			},
			Start: units.YearsOf(d.StartYears),
		})
	}
	return sch
}

// sequentialized re-packs the schedule's deployments back to back in
// arrival order — the legacy Eqs. 1–2 assumption — for the
// sequential-contrast columns of the timeline response.
func sequentialized(sch core.Schedule) core.Schedule {
	deps := append([]core.Deployment(nil), sch.Deployments...)
	sort.SliceStable(deps, func(i, j int) bool { return deps[i].Start < deps[j].Start })
	out := core.Schedule{Name: sch.Name + "-sequential", Sizing: sch.Sizing, StrictEq2: sch.StrictEq2}
	var at float64
	for _, d := range deps {
		d.Start = units.YearsOf(at)
		at += d.App.Lifetime.Years()
		out.Deployments = append(out.Deployments, d)
	}
	return out
}

// RunTimeline evaluates a time-phased deployment schedule on N
// platforms of a domain set: per-platform assessments with fleet,
// refresh and concurrency quantities, pairwise ratios, the winner, and
// a sequential-accounting contrast per platform. It matches `greenfpga
// timeline -json` exactly.
func RunTimeline(req TimelineRequest) (*TimelineResponse, error) {
	req = req.Normalized()
	if req.NApps < 0 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("napps must be >= 1, got %d", req.NApps)}
	}
	if len(req.Deployments) > MaxTimelineDeployments {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("more than %d deployments exceeds the limit", MaxTimelineDeployments)}
	}
	if req.ChipLifetimeYears < 0 {
		return nil, &Error{Code: "invalid_request",
			Message: fmt.Sprintf("negative chip lifetime %g", req.ChipLifetimeYears)}
	}

	var cs core.CompiledSet
	var d isoperf.Domain
	var err error
	if req.ChipLifetimeYears == 0 {
		cs, d, err = compiledDomainSet(req.Domain)
		if err != nil {
			return nil, err
		}
	} else {
		// A refresh cap changes every platform, so the memoized
		// compilations do not apply; compile a capped set per request
		// (the result cache absorbs repeats).
		d, err = isoperf.ByName(req.Domain)
		if err != nil {
			return nil, err
		}
		set, err := d.Set()
		if err != nil {
			return nil, err
		}
		for i := range set {
			set[i].ChipLifetime = units.YearsOf(req.ChipLifetimeYears)
		}
		cs, err = set.Compile()
		if err != nil {
			return nil, err
		}
	}
	if cs, err = selectPlatforms(cs, req.Platforms, "timeline"); err != nil {
		return nil, err
	}

	sch := req.schedule()
	sc, err := cs.CompareSchedule(sch)
	if err != nil {
		return nil, ToError(err)
	}
	seq := sequentialized(sch)
	resp := &TimelineResponse{
		Domain:              d.Name,
		Sizing:              req.Sizing,
		SpanYears:           sc.Span.Years(),
		SequentialSpanYears: seq.Span().Years(),
		PeakConcurrent:      sc.PeakConcurrent,
		Deployments:         req.Deployments,
		Winner:              sc.WinnerAssessment().Platform,
	}
	plain := make([]core.Assessment, len(sc.Assessments))
	for i, a := range sc.Assessments {
		plain[i] = a.Assessment
		sa, err := cs[i].EvaluateSchedule(seq)
		if err != nil {
			return nil, ToError(err)
		}
		resp.Platforms = append(resp.Platforms, TimelinePlatform{
			PlatformResult:    *platformResult(a.Assessment),
			PeakDemandDevices: a.PeakDemand,
			SequentialTotalKg: sa.Total().Kilograms(),
		})
	}
	resp.Ratios = pairRatios(plain, sc.Ratios)
	return resp, nil
}

// Normalized fills the per-axis CLI defaults, so bodies that spell
// the defaults out and bodies that omit them are one cache entry.
func (r SweepRequest) Normalized() SweepRequest {
	if r.Domain == "" {
		r.Domain = "DNN"
	}
	if r.Axis == "" {
		r.Axis = "napps"
	}
	switch r.Axis {
	case "napps":
		if r.From <= 0 {
			r.From = 1
		}
		if r.To <= 0 {
			r.To = 12
		}
		r.From, r.To = float64(int(r.From)), float64(int(r.To))
		r.Points = int(r.To-r.From) + 1
	case "lifetime":
		if r.From <= 0 {
			r.From = 0.2
		}
		if r.To <= 0 {
			r.To = 2.5
		}
		if r.Points <= 0 {
			r.Points = 24
		}
	case "volume":
		if r.From <= 0 {
			r.From = 1e3
		}
		if r.To <= 0 {
			r.To = 1e6
		}
		if r.Points <= 0 {
			r.Points = 13
		}
	}
	return r
}

// MaxSweepPoints bounds one sweep's sample count: far above any
// plotting need, low enough that a single request cannot allocate
// unbounded memory on the service.
const MaxSweepPoints = 100_000

// MaxMonteCarloSamples bounds one uncertainty study for the same
// reason (draws cost ~microseconds each).
const MaxMonteCarloSamples = 1_000_000

// SweepAxis materializes the request's axis sample points.
func (r SweepRequest) SweepAxis() (sweep.Axis, error) {
	if r.From > r.To {
		return sweep.Axis{}, fmt.Errorf("empty sweep range: from %g > to %g", r.From, r.To)
	}
	if r.Points > MaxSweepPoints {
		return sweep.Axis{}, fmt.Errorf("%d sweep points exceeds the %d limit", r.Points, MaxSweepPoints)
	}
	switch r.Axis {
	case "napps":
		return sweep.Axis{Name: "Num Apps", Values: sweep.IntRange(int(r.From), int(r.To))}, nil
	case "lifetime":
		return sweep.Axis{Name: "App Lifetime [y]", Values: sweep.Linspace(r.From, r.To, r.Points)}, nil
	case "volume":
		return sweep.Axis{Name: "App Volume", Values: sweep.Logspace(r.From, r.To, r.Points), Log: true}, nil
	default:
		return sweep.Axis{}, fmt.Errorf("unknown axis %q (napps, lifetime, volume)", r.Axis)
	}
}

// RunSweep runs a 1-D sweep over a domain pair, matching `greenfpga
// sweep` exactly. Off-axis parameters stay at the CLI defaults
// (5 applications, 2-year lifetime, 1e6 volume).
func RunSweep(req SweepRequest) (*SweepResponse, error) {
	req = req.Normalized()
	ax, err := req.SweepAxis()
	if err != nil {
		return nil, err
	}
	cp, d, err := compiledDomain(req.Domain)
	if err != nil {
		return nil, err
	}
	eval := func(x float64) (units.Mass, units.Mass, error) {
		nApps, tY, v := 5, 2.0, 1e6
		switch req.Axis {
		case "napps":
			nApps = int(x + 0.5)
		case "lifetime":
			tY = x
		case "volume":
			v = x
		}
		c, err := cp.CompareUniform(nApps, units.YearsOf(tY), v, 0)
		if err != nil {
			return 0, 0, err
		}
		return c.FPGA.Total(), c.ASIC.Total(), nil
	}
	pts, err := sweep.Run1D(ax, eval)
	if err != nil {
		return nil, err
	}
	resp := &SweepResponse{Domain: d.Name, Axis: req.Axis, Points: make([]SweepPoint, len(pts))}
	for i, p := range pts {
		resp.Points[i] = SweepPoint{
			X: p.X, FPGAKg: p.FPGA.Kilograms(), ASICKg: p.ASIC.Kilograms(), Ratio: p.Ratio,
		}
	}
	return resp, nil
}

// Normalized fills the CLI defaults (2000 samples, seed 1, 5 apps,
// DNN domain).
func (r MonteCarloRequest) Normalized() MonteCarloRequest {
	if r.Domain == "" {
		r.Domain = "DNN"
	}
	if r.Samples == 0 {
		r.Samples = 2000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.NApps == 0 {
		r.NApps = 5
	}
	return r
}

// RunMonteCarlo propagates the Table 1 uncertainty ranges through a
// domain pair's FPGA:ASIC ratio, matching `greenfpga mc` exactly.
func RunMonteCarlo(req MonteCarloRequest) (*MonteCarloResponse, error) {
	req = req.Normalized()
	if req.Samples > MaxMonteCarloSamples {
		return nil, fmt.Errorf("%d samples exceeds the %d limit", req.Samples, MaxMonteCarloSamples)
	}
	d, err := isoperf.ByName(req.Domain)
	if err != nil {
		return nil, err
	}
	res, err := greenfpga.DomainRatioStudy(d, req.NApps, req.Samples, req.Seed)
	if err != nil {
		return nil, err
	}
	wins := 0
	for _, s := range res.Samples {
		if s < 1 {
			wins++
		}
	}
	resp := &MonteCarloResponse{
		Domain: d.Name, Samples: req.Samples, Seed: req.Seed, NApps: req.NApps,
		Mean: res.Mean, StdDev: res.StdDev,
		Percentiles: Percentiles{
			P5:  res.Percentile(5),
			P25: res.Percentile(25),
			P50: res.Percentile(50),
			P75: res.Percentile(75),
			P95: res.Percentile(95),
		},
		ProbFPGAWins: float64(wins) / float64(len(res.Samples)),
	}
	for _, s := range res.Tornado {
		resp.Tornado = append(resp.Tornado, TornadoEntry{Param: s.Param, Swing: s.Swing()})
	}
	return resp, nil
}

// Devices returns the Table 3 catalog in JSON form.
func Devices() DeviceList {
	var out DeviceList
	for _, s := range device.Catalog() {
		out.Devices = append(out.Devices, Device{
			Name:          s.Name,
			Kind:          string(s.Kind),
			Node:          s.Node.Name,
			DieAreaMM2:    s.DieArea.MM2(),
			PeakPowerW:    s.PeakPower.Watts(),
			CapacityGates: s.CapacityGates,
			BasedOn:       s.BasedOn,
		})
	}
	return out
}

// Domains returns the Table 2 testcases in JSON form.
func Domains() DomainList {
	var out DomainList
	for _, d := range isoperf.Domains() {
		out.Domains = append(out.Domains, Domain{
			Name:            d.Name,
			AreaRatio:       d.AreaRatio,
			PowerRatio:      d.PowerRatio,
			ASICAreaMM2:     d.ASICArea.MM2(),
			ASICPeakPowerW:  d.ASICPeakPower.Watts(),
			DutyCycle:       d.DutyCycle,
			DesignEngineers: d.DesignEngineers,
		})
	}
	return out
}

// Experiments returns the paper-artifact registry IDs in run order.
func Experiments() ExperimentList {
	return ExperimentList{Experiments: experiments.List()}
}

// Experiment regenerates one paper artifact in JSON form.
func Experiment(id string) (*ExperimentResult, error) {
	out, err := experiments.Run(id)
	if err != nil {
		return nil, err
	}
	res := &ExperimentResult{ID: out.ID, Title: out.Title, Charts: out.Charts, Notes: out.Notes}
	for _, t := range out.Tables {
		res.Tables = append(res.Tables, ExperimentTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return res, nil
}

// WriteJSON encodes v the service's canonical way — compact, HTML
// escaping off, trailing newline. The CLI's -json modes and every
// server handler use it, which is what makes their outputs
// byte-identical.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// ToError coerces any compute error into the service's error
// envelope: *Error values pass through, everything else becomes an
// invalid_request (every Run* failure is a property of the request —
// an unknown domain, an invalid scenario — not of the server).
func ToError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: "invalid_request", Message: err.Error()}
}
