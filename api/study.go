package api

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"greenfpga/internal/montecarlo"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

// This file decomposes the six compute request shapes into resumable
// studies: a fixed number of independently computable chunks plus a
// finalizer that assembles chunk payloads into the exact bytes the
// synchronous endpoint would have written. The jobs layer checkpoints
// chunk payloads as they complete, so a killed process re-runs only
// the chunks that had not landed — and because Monte-Carlo draws are
// sub-seeded by index and sweep points depend only on the axis, the
// resumed result is bit-identical to an uninterrupted run.

// Chunk sizing: big enough that per-chunk checkpoint writes are noise
// against the compute, small enough that a kill loses little work. A
// 200k-draw study is ~49 chunks; the 100k-point sweep cap is ~98.
const (
	mcChunkDraws     = 4096
	sweepChunkPoints = 1024
)

// Study is one compute request decomposed into checkpointable chunks.
// ComputeChunk is safe to call for any chunk in any order (each call
// parallelizes internally over the worker pool); Finalize requires
// every chunk's payload, in chunk order, and returns the response's
// canonical JSON — byte-identical to the synchronous endpoint's for
// the same CanonicalKey.
type Study struct {
	// Endpoint is the canonical endpoint path ("/v1/mc", ...).
	Endpoint string
	// Key is CanonicalKey(Endpoint, normalized request) — the same
	// content address the server's result cache uses, which is what
	// lets a finished job's bytes serve later synchronous requests.
	Key string
	// Req is the normalized request.
	Req any

	chunks   int
	compute  func(ctx context.Context, i int) ([]byte, error)
	finalize func(ctx context.Context, chunks [][]byte) ([]byte, error)
}

// NumChunks is the study's chunk count (≥ 1).
func (s *Study) NumChunks() int { return s.chunks }

// ComputeChunk evaluates chunk i and returns its checkpoint payload.
func (s *Study) ComputeChunk(ctx context.Context, i int) ([]byte, error) {
	if i < 0 || i >= s.chunks {
		return nil, fmt.Errorf("chunk %d outside [0, %d)", i, s.chunks)
	}
	return s.compute(ctx, i)
}

// Finalize assembles the chunk payloads (all of them, in chunk order)
// into the response's canonical JSON bytes.
func (s *Study) Finalize(ctx context.Context, chunks [][]byte) ([]byte, error) {
	if len(chunks) != s.chunks {
		return nil, fmt.Errorf("finalizing %d chunks of %d", len(chunks), s.chunks)
	}
	return s.finalize(ctx, chunks)
}

// CanonicalEndpoint maps an endpoint spelling ("mc", "/v1/mc") to its
// canonical path, or errors for endpoints that cannot run as jobs.
func CanonicalEndpoint(name string) (string, error) {
	switch name {
	case "evaluate", "/v1/evaluate":
		return "/v1/evaluate", nil
	case "compare", "/v1/compare":
		return "/v1/compare", nil
	case "crossover", "/v1/crossover":
		return "/v1/crossover", nil
	case "timeline", "/v1/timeline":
		return "/v1/timeline", nil
	case "sweep", "/v1/sweep":
		return "/v1/sweep", nil
	case "mc", "/v1/mc":
		return "/v1/mc", nil
	case "fleet", "/v1/fleet":
		return "/v1/fleet", nil
	default:
		return "", &Error{Code: "invalid_request", Message: fmt.Sprintf(
			"unknown job endpoint %q (evaluate, compare, crossover, timeline, sweep, mc, fleet)", name)}
	}
}

// decodeStrict decodes raw with the same strictness the server applies
// to request bodies: unknown fields and trailing data are errors.
func decodeStrict(raw json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &Error{Code: "invalid_request", Message: "bad job request: " + err.Error()}
	}
	if dec.More() {
		return &Error{Code: "invalid_request", Message: "bad job request: trailing data"}
	}
	return nil
}

// NewStudy decodes one compute request (the body the synchronous
// endpoint would accept) and decomposes it into a resumable Study.
// Validation and platform resolution happen here — a malformed request
// fails at submission, not mid-job. ctx bounds the resolution work
// only; each chunk runs under its own context.
func (e *Evaluator) NewStudy(ctx context.Context, endpoint string, raw json.RawMessage) (*Study, error) {
	canon, err := CanonicalEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	switch canon {
	case "/v1/mc":
		var req MonteCarloRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		return e.newMonteCarloStudy(ctx, req)
	case "/v1/sweep":
		var req SweepRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		return e.newSweepStudy(ctx, req)
	case "/v1/fleet":
		var req FleetRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		return e.newFleetStudy(ctx, req)
	case "/v1/evaluate":
		var req EvaluateRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		norm := req.Normalized()
		return e.newSingleChunkStudy(canon, &norm, func(ctx context.Context) (any, error) {
			return e.Evaluate(ctx, &norm)
		})
	case "/v1/compare":
		var req CompareRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		norm := req.Normalized()
		return e.newSingleChunkStudy(canon, norm, func(ctx context.Context) (any, error) {
			return e.RunCompare(ctx, norm)
		})
	case "/v1/crossover":
		var req CrossoverRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		norm := req.Normalized()
		return e.newSingleChunkStudy(canon, norm, func(ctx context.Context) (any, error) {
			return e.RunCrossover(ctx, norm)
		})
	case "/v1/timeline":
		var req TimelineRequest
		if err := decodeStrict(raw, &req); err != nil {
			return nil, err
		}
		norm := req.Normalized()
		return e.newSingleChunkStudy(canon, norm, func(ctx context.Context) (any, error) {
			return e.RunTimeline(ctx, norm)
		})
	}
	panic("unreachable")
}

// newSingleChunkStudy wraps an endpoint without a natural chunk
// decomposition as a one-chunk study whose payload is already the
// final response bytes. These evaluations are microseconds to
// milliseconds — there is nothing worth checkpointing below whole-
// result granularity.
func (e *Evaluator) newSingleChunkStudy(endpoint string, norm any,
	run func(ctx context.Context) (any, error)) (*Study, error) {
	key, err := CanonicalKey(endpoint, norm)
	if err != nil {
		return nil, err
	}
	return &Study{
		Endpoint: endpoint,
		Key:      key,
		Req:      norm,
		chunks:   1,
		compute: func(ctx context.Context, _ int) ([]byte, error) {
			v, err := run(ctx)
			if err != nil {
				return nil, err
			}
			return EncodeJSON(v)
		},
		finalize: func(_ context.Context, chunks [][]byte) ([]byte, error) {
			return chunks[0], nil
		},
	}, nil
}

// chunkSpan is chunk i's index range under a fixed chunk size.
func chunkSpan(i, size, total int) (lo, hi int) {
	lo = i * size
	hi = lo + size
	if hi > total {
		hi = total
	}
	return lo, hi
}

// chunkCount is the chunk count covering total at the given size,
// never below one (a zero-point study still needs a finalize pass).
func chunkCount(total, size int) int {
	n := (total + size - 1) / size
	if n < 1 {
		n = 1
	}
	return n
}

// newMonteCarloStudy decomposes a Monte-Carlo request into draw-range
// chunks. A chunk payload is its draws' model outputs in index order,
// as raw little-endian float64s; Finalize concatenates them and runs
// the same moment/percentile/tornado arithmetic as the synchronous
// path, so the result is bit-identical.
func (e *Evaluator) newMonteCarloStudy(ctx context.Context, req MonteCarloRequest) (*Study, error) {
	m, err := e.prepareMonteCarlo(ctx, req)
	if err != nil {
		return nil, err
	}
	key, err := CanonicalKey("/v1/mc", m.req)
	if err != nil {
		return nil, err
	}
	samples := m.req.Samples
	return &Study{
		Endpoint: "/v1/mc",
		Key:      key,
		Req:      m.req,
		chunks:   chunkCount(samples, mcChunkDraws),
		compute: func(ctx context.Context, i int) ([]byte, error) {
			lo, hi := chunkSpan(i, mcChunkDraws, samples)
			out, err := montecarlo.RunRange(m.config(ctx), lo, hi)
			if err != nil {
				return nil, err
			}
			return packFloats(out), nil
		},
		finalize: func(ctx context.Context, chunks [][]byte) ([]byte, error) {
			all := make([]float64, 0, samples)
			for i, c := range chunks {
				lo, hi := chunkSpan(i, mcChunkDraws, samples)
				vals, err := unpackFloats(c, hi-lo)
				if err != nil {
					return nil, fmt.Errorf("mc chunk %d: %w", i, err)
				}
				all = append(all, vals...)
			}
			res, err := montecarlo.Finalize(m.config(ctx), all)
			if err != nil {
				return nil, err
			}
			return EncodeJSON(m.assemble(res))
		},
	}, nil
}

// newSweepStudy decomposes a sweep request into axis-range chunks. A
// chunk payload holds (x, totals...) per point as raw little-endian
// float64s; Finalize rebuilds the point list and runs the synchronous
// path's assembly.
func (e *Evaluator) newSweepStudy(ctx context.Context, req SweepRequest) (*Study, error) {
	st, err := e.prepareSweep(ctx, req)
	if err != nil {
		return nil, err
	}
	key, err := CanonicalKey("/v1/sweep", st.req)
	if err != nil {
		return nil, err
	}
	points := len(st.ax.Values)
	width := 1 + len(st.cs) // x + one total per platform
	return &Study{
		Endpoint: "/v1/sweep",
		Key:      key,
		Req:      st.req,
		chunks:   chunkCount(points, sweepChunkPoints),
		compute: func(ctx context.Context, i int) ([]byte, error) {
			lo, hi := chunkSpan(i, sweepChunkPoints, points)
			pts, err := sweep.RunRangeN(st.ax, len(st.cs), lo, hi, st.eval(ctx))
			if err != nil {
				return nil, err
			}
			flat := make([]float64, 0, len(pts)*width)
			for _, p := range pts {
				flat = append(flat, p.X)
				for _, m := range p.Totals {
					flat = append(flat, float64(m))
				}
			}
			return packFloats(flat), nil
		},
		finalize: func(_ context.Context, chunks [][]byte) ([]byte, error) {
			pts := make([]sweep.PointN, 0, points)
			for i, c := range chunks {
				lo, hi := chunkSpan(i, sweepChunkPoints, points)
				flat, err := unpackFloats(c, (hi-lo)*width)
				if err != nil {
					return nil, fmt.Errorf("sweep chunk %d: %w", i, err)
				}
				for o := 0; o < len(flat); o += width {
					p := sweep.PointN{X: flat[o], Totals: make([]units.Mass, len(st.cs))}
					for j := range p.Totals {
						p.Totals[j] = units.Mass(flat[o+1+j])
					}
					pts = append(pts, p)
				}
			}
			return EncodeJSON(st.assemble(pts))
		},
	}, nil
}

// newFleetStudy decomposes a fleet request into one chunk per region:
// a region's whole platform row — shared-scenario totals plus the
// grid-aware crossover — is a natural checkpoint unit (regions are
// independent, and a row is a handful of evaluations). A chunk payload
// is the row's flat float vector packed little-endian; Finalize
// rebuilds the rows and runs the synchronous path's assembly, so the
// bytes match a /v1/fleet response exactly.
func (e *Evaluator) newFleetStudy(ctx context.Context, req FleetRequest) (*Study, error) {
	st, err := e.prepareFleet(ctx, req)
	if err != nil {
		return nil, err
	}
	key, err := CanonicalKey("/v1/fleet", st.req)
	if err != nil {
		return nil, err
	}
	width := st.width()
	return &Study{
		Endpoint: "/v1/fleet",
		Key:      key,
		Req:      st.req,
		chunks:   len(st.regions),
		compute: func(ctx context.Context, i int) ([]byte, error) {
			vals, err := st.evalRegion(ctx, i)
			if err != nil {
				return nil, err
			}
			return packFloats(vals), nil
		},
		finalize: func(_ context.Context, chunks [][]byte) ([]byte, error) {
			rows := make([][]float64, len(chunks))
			for i, c := range chunks {
				vals, err := unpackFloats(c, width)
				if err != nil {
					return nil, fmt.Errorf("fleet chunk %d: %w", i, err)
				}
				rows[i] = vals
			}
			return EncodeJSON(st.assemble(rows))
		},
	}, nil
}

// packFloats encodes vals as little-endian IEEE-754 bits — an exact
// round-trip, unlike any decimal rendering.
func packFloats(vals []float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// unpackFloats decodes exactly want float64s, erroring on any size
// mismatch (a corrupt or mismatched checkpoint payload).
func unpackFloats(b []byte, want int) ([]float64, error) {
	if len(b) != 8*want {
		return nil, fmt.Errorf("payload is %d bytes, want %d", len(b), 8*want)
	}
	out := make([]float64, want)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}
