package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// CanonicalKey returns the content address of a request: a SHA-256
// over the endpoint name and the canonical JSON re-encoding of req.
// Because req is the decoded, typed (and, for the domain endpoints,
// normalized) request — not the raw body — two bodies that differ
// only in field order, whitespace, unknown fields, or spelled-out
// defaults produce the same key. The server's result cache and the
// evaluator's compiled-platform cache are both keyed this way.
func CanonicalKey(endpoint string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(b)
	return endpoint + ":" + hex.EncodeToString(h[:]), nil
}
