package api

import (
	"runtime/debug"
)

// VersionInfo identifies the running build: the module version, the
// Go toolchain, and — when the binary was built from a git checkout —
// the VCS revision and commit time. `greenfpga version`, the server's
// /v1/version endpoint and the access-log preamble all render this,
// so a log line or a bug report pins the exact build.
type VersionInfo struct {
	// Version is the module version ("(devel)" for a source build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when stamped.
	Revision string `json:"revision,omitempty"`
	// CommitTime is the commit's timestamp (RFC 3339), when stamped.
	CommitTime string `json:"commit_time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
}

// BuildVersion reads the build's identity from the information the Go
// linker embeds (runtime/debug.ReadBuildInfo) — no ldflags plumbing,
// so every build path (go build, go test, go run) is stamped alike.
func BuildVersion() VersionInfo {
	v := VersionInfo{Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.CommitTime = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
}
