package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"greenfpga/internal/config"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/isoperf"
)

// TestCanonicalKeyFieldOrder checks the content addressing: bodies
// that differ only in field order, whitespace or spelled-out defaults
// map to one key, bodies with different values do not.
func TestCanonicalKeyFieldOrder(t *testing.T) {
	decode := func(s string) CrossoverRequest {
		var r CrossoverRequest
		if err := json.Unmarshal([]byte(s), &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := decode(`{"domain":"DNN","napps":5}`)
	b := decode(`{  "napps": 5,   "domain": "DNN" }`)
	c := decode(`{}`)
	ka, err := CanonicalKey("/v1/crossover", a.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := CanonicalKey("/v1/crossover", b.Normalized())
	kc, _ := CanonicalKey("/v1/crossover", c.Normalized())
	if ka != kb {
		t.Errorf("field order changed the key: %s vs %s", ka, kb)
	}
	if ka != kc {
		t.Errorf("spelled-out defaults changed the key: %s vs %s", ka, kc)
	}
	d := decode(`{"domain":"Crypto"}`)
	kd, _ := CanonicalKey("/v1/crossover", d.Normalized())
	if kd == ka {
		t.Error("different domains share a key")
	}
	ke, _ := CanonicalKey("/v1/sweep", a.Normalized())
	if ke == ka {
		t.Error("different endpoints share a key")
	}
}

// TestEvaluateMatchesCore checks the shared compute path against a
// direct core.Evaluate of the same scenario.
func TestEvaluateMatchesCore(t *testing.T) {
	cfg := config.Example()
	resp, err := Evaluate(&EvaluateRequest{Scenario: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FPGA == nil || resp.ASIC == nil {
		t.Fatalf("example config must evaluate both sides: %+v", resp)
	}
	scen, err := cfg.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []struct {
		pc   *PlatformConfig
		got  *PlatformResult
		name string
	}{{cfg.FPGA, resp.FPGA, "fpga"}, {cfg.ASIC, resp.ASIC, "asic"}} {
		p, err := side.pc.ToPlatform()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(p, scen)
		if err != nil {
			t.Fatal(err)
		}
		if got, w := side.got.TotalKg, want.Total().Kilograms(); got != w {
			t.Errorf("%s total: api %v, core %v", side.name, got, w)
		}
		if got, w := side.got.Breakdown.OperationKg, want.Breakdown.Operation.Kilograms(); got != w {
			t.Errorf("%s operation: api %v, core %v", side.name, got, w)
		}
		if side.got.DevicesManufactured != want.DevicesManufactured {
			t.Errorf("%s devices: api %v, core %v", side.name,
				side.got.DevicesManufactured, want.DevicesManufactured)
		}
	}
	if resp.Ratio == nil {
		t.Fatal("two-sided evaluation must carry a ratio")
	}
	want := resp.FPGA.TotalKg / resp.ASIC.TotalKg
	if *resp.Ratio != want {
		t.Errorf("ratio %v, want %v", *resp.Ratio, want)
	}
	if resp.Verdict != "fpga" && resp.Verdict != "asic" {
		t.Errorf("verdict %q", resp.Verdict)
	}
}

// TestEvaluatorCompiledCache checks that repeated evaluations of the
// same platform reuse one compilation.
func TestEvaluatorCompiledCache(t *testing.T) {
	e := NewEvaluator(8)
	req := &EvaluateRequest{Scenario: config.Example()}
	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	hits, misses := e.CompileStats()
	if hits != 0 || misses != 2 {
		t.Fatalf("cold evaluate: hits %d misses %d, want 0/2", hits, misses)
	}
	if _, err := e.Evaluate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	hits, misses = e.CompileStats()
	if hits != 2 || misses != 2 {
		t.Fatalf("warm evaluate: hits %d misses %d, want 2/2", hits, misses)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil); err == nil {
		t.Error("nil request must error")
	}
	if _, err := Evaluate(&EvaluateRequest{}); err == nil {
		t.Error("missing scenario must error")
	}
	cfg := config.Example()
	cfg.FPGA = &PlatformConfig{Device: "nope", DutyCycle: 0.3}
	if _, err := Evaluate(&EvaluateRequest{Scenario: cfg}); err == nil {
		t.Error("unknown device must error")
	}
}

// TestRunCrossoverMatchesCLI pins the DNN crossovers the CLI test
// asserts ("A2F at N_app = 6", "F2A at T_i = 1.59").
func TestRunCrossoverMatchesCLI(t *testing.T) {
	resp, err := RunCrossover(CrossoverRequest{Domain: "DNN"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.A2FNumApps.Found || resp.A2FNumApps.Value != 6 {
		t.Errorf("DNN A2F: %+v, want 6", resp.A2FNumApps)
	}
	if !resp.F2ALifetimeYears.Found || math.Abs(resp.F2ALifetimeYears.Value-1.59) > 0.01 {
		t.Errorf("DNN F2A lifetime: %+v, want ~1.59", resp.F2ALifetimeYears)
	}
	if _, err := RunCrossover(CrossoverRequest{Domain: "Quantum"}); err == nil {
		t.Error("unknown domain must error")
	}
}

func TestRunSweep(t *testing.T) {
	resp, err := RunSweep(SweepRequest{Domain: "DNN", Axis: "napps"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 12 {
		t.Fatalf("default napps sweep has %d points, want 12", len(resp.Points))
	}
	if resp.Points[0].X != 1 || resp.Points[11].X != 12 {
		t.Errorf("axis range %v..%v, want 1..12", resp.Points[0].X, resp.Points[11].X)
	}
	// The DNN A2F crossover at 6 applications must show in the ratio.
	if resp.Points[4].Ratio <= 1 {
		t.Errorf("ratio at N=5 is %v, want > 1 (ASIC wins before crossover)", resp.Points[4].Ratio)
	}
	if resp.Points[5].Ratio >= 1 {
		t.Errorf("ratio at N=6 is %v, want < 1 (FPGA wins from crossover)", resp.Points[5].Ratio)
	}
	if _, err := RunSweep(SweepRequest{Axis: "frequency"}); err == nil {
		t.Error("unknown axis must error")
	}
}

// TestRunCaps checks the resource bounds on one request.
func TestRunCaps(t *testing.T) {
	if _, err := RunSweep(SweepRequest{Axis: "lifetime", Points: MaxSweepPoints + 1}); err == nil {
		t.Error("oversized point count must error")
	}
	if _, err := RunSweep(SweepRequest{Axis: "napps", From: 1, To: 1e12}); err == nil {
		t.Error("huge napps range must error")
	}
	if _, err := RunMonteCarlo(MonteCarloRequest{Samples: MaxMonteCarloSamples + 1}); err == nil {
		t.Error("oversized sample count must error")
	}
}

func TestRunMonteCarloDeterministic(t *testing.T) {
	req := MonteCarloRequest{Domain: "DNN", Samples: 200, Seed: 7}
	a, err := RunMonteCarlo(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMonteCarlo(req)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := WriteJSON(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ab.String() != bb.String() {
		t.Error("same seed produced different MC responses")
	}
	if a.ProbFPGAWins < 0 || a.ProbFPGAWins > 1 {
		t.Errorf("ProbFPGAWins %v out of [0,1]", a.ProbFPGAWins)
	}
	if len(a.Tornado) == 0 {
		t.Error("tornado ranking empty")
	}
}

// TestRunCompareDefaults checks the four-way default comparison: full
// DNN set, §4.2 reference scenario, 12-point frontier, with the
// pairwise ratios consistent with the per-platform totals.
func TestRunCompareDefaults(t *testing.T) {
	resp, err := RunCompare(CompareRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Domain != "DNN" || resp.NApps != 5 || resp.LifetimeYears != 2 || resp.Volume != 1e6 {
		t.Fatalf("normalized defaults: %+v", resp)
	}
	if len(resp.Platforms) != 4 {
		t.Fatalf("full DNN set has %d platforms, want 4", len(resp.Platforms))
	}
	kinds := map[string]bool{}
	byName := map[string]float64{}
	for _, p := range resp.Platforms {
		kinds[p.Kind] = true
		byName[p.Platform] = p.TotalKg
	}
	for _, k := range []string{"fpga", "asic", "gpu", "cpu"} {
		if !kinds[k] {
			t.Errorf("missing platform kind %q", k)
		}
	}
	if len(resp.Ratios) != 6 {
		t.Fatalf("4 platforms need 6 pairwise ratios, got %d", len(resp.Ratios))
	}
	for _, r := range resp.Ratios {
		want := byName[r.A] / byName[r.B]
		if r.Ratio != want {
			t.Errorf("ratio %s:%s = %g, want %g", r.A, r.B, r.Ratio, want)
		}
	}
	min := resp.Platforms[0]
	for _, p := range resp.Platforms {
		if p.TotalKg < min.TotalKg {
			min = p
		}
	}
	if resp.Winner != min.Platform {
		t.Errorf("winner %q, minimum total is %q", resp.Winner, min.Platform)
	}
	if len(resp.Frontier) != 12 {
		t.Fatalf("frontier has %d points, want 12", len(resp.Frontier))
	}
	// The §4.2 story: ASIC wins one-shot, FPGA from its paper
	// crossover at 6 applications.
	if resp.Frontier[0].Winner != "DNN-ASIC" || resp.Frontier[11].Winner != "DNN-FPGA" {
		t.Errorf("frontier endpoints: %+v", resp.Frontier)
	}
}

// TestRunCompareSelectors checks platform subsetting and its error
// paths.
func TestRunCompareSelectors(t *testing.T) {
	resp, err := RunCompare(CompareRequest{Platforms: KindSpecs("gpu", "asic"), NApps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Platforms) != 2 || resp.Platforms[0].Kind != "gpu" || resp.Platforms[1].Kind != "asic" {
		t.Fatalf("selected platforms: %+v", resp.Platforms)
	}
	if len(resp.Ratios) != 1 || resp.Ratios[0].A != "DNN-GPU" || resp.Ratios[0].B != "DNN-ASIC" {
		t.Fatalf("selected ratios: %+v", resp.Ratios)
	}
	for _, bad := range []CompareRequest{
		{Platforms: KindSpecs("fpga")},
		{Platforms: KindSpecs("fpga", "fpga")},
		{Platforms: KindSpecs("fpga", "npu")},
		{Domain: "Quantum"},
		{NApps: -1},
		{MaxApps: -5},
		{MaxApps: MaxCompareApps + 1},
	} {
		if _, err := RunCompare(bad); err == nil {
			t.Errorf("request %+v must error", bad)
		}
	}
}

// TestRunCrossoverSelectors checks that the generalized solvers
// reproduce the gpu-extension story and reject bad selectors.
func TestRunCrossoverSelectors(t *testing.T) {
	// FPGA overtakes the GPU from 3 applications (the gpu-extension
	// experiment's headline).
	resp, err := RunCrossover(CrossoverRequest{PlatformA: "fpga", PlatformB: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PlatformA != "fpga" || resp.PlatformB != "gpu" {
		t.Errorf("selector echo: %+v", resp)
	}
	if !resp.A2FNumApps.Found || resp.A2FNumApps.Value != 3 {
		t.Errorf("FPGA-over-GPU crossover: %+v, want 3", resp.A2FNumApps)
	}
	// Default requests keep the legacy shape: no selector echoes.
	legacy, err := RunCrossover(CrossoverRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.PlatformA != "" || legacy.PlatformB != "" {
		t.Errorf("legacy response must omit selectors: %+v", legacy)
	}
	for _, bad := range []CrossoverRequest{
		{PlatformA: "fpga"},
		{PlatformA: "fpga", PlatformB: "fpga"},
		{PlatformA: "fpga", PlatformB: "npu"},
	} {
		if _, err := RunCrossover(bad); err == nil {
			t.Errorf("request %+v must error", bad)
		}
	}
}

// TestTimelineNormalization checks the generator-shorthand expansion:
// an empty body and its spelled-out equivalent are one cache entry,
// normalization is idempotent, and explicit deployments win over (and
// clear) the generator fields.
func TestTimelineNormalization(t *testing.T) {
	norm := TimelineRequest{}.Normalized()
	if norm.Domain != "DNN" || norm.Workload == nil {
		t.Fatalf("defaults: %+v", norm)
	}
	w := norm.Workload
	if w.Sizing != "shared" || len(w.Deployments) != 5 {
		t.Fatalf("workload defaults: %+v", w)
	}
	if norm.NApps != 0 || norm.IntervalYears != 0 || norm.LifetimeYears != 0 || norm.Volume != 0 ||
		norm.Sizing != "" || len(norm.Deployments) != 0 {
		t.Errorf("legacy fields must fold into the workload: %+v", norm)
	}
	if w.NApps != 0 || w.IntervalYears != 0 || w.LifetimeYears != 0 || w.Volume != 0 {
		t.Errorf("generator fields must clear after expansion: %+v", w)
	}
	if len(norm.Platforms) != 4 || !norm.Platforms[0].isPlainKind("DNN", "fpga") {
		t.Errorf("empty platform list must expand to the domain set: %+v", norm.Platforms)
	}
	for i, d := range w.Deployments {
		want := TimelineDeployment{
			Name: fmt.Sprintf("app%d", i+1), StartYears: float64(i) * 0.5,
			LifetimeYears: 2, Volume: 1e6,
		}
		if d != want {
			t.Errorf("deployment %d: %+v, want %+v", i, d, want)
		}
	}
	// Idempotence, and shorthand vs spelled-out equivalence under the
	// canonical key — across the legacy-explicit and spec-form
	// spellings.
	again := norm.Normalized()
	k1, err := CanonicalKey("/v1/timeline", norm)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := CanonicalKey("/v1/timeline", again)
	explicit := TimelineRequest{Domain: "DNN", Deployments: append([]TimelineDeployment(nil), w.Deployments...)}
	k3, _ := CanonicalKey("/v1/timeline", explicit.Normalized())
	spec := TimelineRequest{
		Platforms: []PlatformSpec{
			{Domain: "DNN", Kind: "fpga"}, {Domain: "DNN", Kind: "asic"},
			{Domain: "DNN", Kind: "gpu"}, {Domain: "DNN", Kind: "cpu"},
		},
		Workload: &WorkloadSpec{Deployments: append([]TimelineDeployment(nil), w.Deployments...)},
	}
	k4, _ := CanonicalKey("/v1/timeline", spec.Normalized())
	if k1 != k2 || k1 != k3 || k1 != k4 {
		t.Errorf("equivalent timeline requests disagree on keys: %s / %s / %s / %s", k1, k2, k3, k4)
	}
	// Explicit deployments silence the generator.
	mixed := TimelineRequest{
		NApps: 9, IntervalYears: 3,
		Deployments: []TimelineDeployment{{LifetimeYears: 1, Volume: 10}},
	}.Normalized()
	mw := mixed.Workload
	if mw == nil || len(mw.Deployments) != 1 || mw.NApps != 0 || mw.Deployments[0].Name != "app1" {
		t.Errorf("explicit deployments must win over the generator: %+v", mw)
	}
	// A request-level chip-lifetime cap distributes onto the platform
	// specs (specs carrying their own keep it).
	capped := TimelineRequest{
		ChipLifetimeYears: 8,
		Platforms: []PlatformSpec{
			{Kind: "fpga"}, {Kind: "asic", ChipLifetimeYears: 3},
		},
	}.Normalized()
	if capped.ChipLifetimeYears != 0 ||
		capped.Platforms[0].ChipLifetimeYears != 8 || capped.Platforms[1].ChipLifetimeYears != 3 {
		t.Errorf("chip lifetime must distribute onto specs: %+v", capped.Platforms)
	}
}

// TestRunTimelineDefaults checks the default staggered timeline: with
// uncapped hardware the span changes nothing, so every platform's
// timeline total equals its sequential contrast, and the ratios and
// winner stay consistent with the totals.
func TestRunTimelineDefaults(t *testing.T) {
	resp, err := RunTimeline(TimelineRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Domain != "DNN" || resp.Sizing != "shared" || len(resp.Platforms) != 4 {
		t.Fatalf("defaults: %+v", resp)
	}
	if resp.SpanYears != 4 || resp.SequentialSpanYears != 10 || resp.PeakConcurrent != 4 {
		t.Fatalf("timeline shape: span %g seq %g peak %d, want 4/10/4",
			resp.SpanYears, resp.SequentialSpanYears, resp.PeakConcurrent)
	}
	if len(resp.Deployments) != 5 || resp.Deployments[4].StartYears != 2 {
		t.Fatalf("echoed deployments: %+v", resp.Deployments)
	}
	byName := map[string]float64{}
	for _, p := range resp.Platforms {
		byName[p.Platform] = p.TotalKg
		if p.TotalKg != p.SequentialTotalKg {
			t.Errorf("%s: uncapped timeline total %g differs from sequential %g",
				p.Platform, p.TotalKg, p.SequentialTotalKg)
		}
		if p.HardwareGenerations != 1 {
			t.Errorf("%s: uncapped platform has %d generations", p.Platform, p.HardwareGenerations)
		}
		if p.Kind == "asic" {
			if p.PeakDemandDevices != 4e6 {
				t.Errorf("ASIC peak demand %g, want 4e6 (four resident 1e6 deployments)", p.PeakDemandDevices)
			}
		}
	}
	if len(resp.Ratios) != 6 {
		t.Fatalf("4 platforms need 6 ratios, got %d", len(resp.Ratios))
	}
	for _, r := range resp.Ratios {
		if want := byName[r.A] / byName[r.B]; r.Ratio != want {
			t.Errorf("ratio %s:%s = %g, want %g", r.A, r.B, r.Ratio, want)
		}
	}
	min := resp.Platforms[0]
	for _, p := range resp.Platforms {
		if p.TotalKg < min.TotalKg {
			min = p
		}
	}
	if resp.Winner != min.Platform {
		t.Errorf("winner %q, minimum total is %q", resp.Winner, min.Platform)
	}
}

// TestRunTimelineRefreshCap checks the headline timeline effect: under
// a refresh cap, staggered arrivals compress the wall-clock span below
// one chip lifetime while the sequential contrast pays a fleet
// rebuild.
func TestRunTimelineRefreshCap(t *testing.T) {
	resp, err := RunTimeline(TimelineRequest{ChipLifetimeYears: 8, Platforms: KindSpecs("fpga", "asic")})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Platforms) != 2 {
		t.Fatalf("platform subset: %+v", resp.Platforms)
	}
	fpga, asic := resp.Platforms[0], resp.Platforms[1]
	if fpga.Kind != "fpga" || asic.Kind != "asic" {
		t.Fatalf("subset order: %+v", resp.Platforms)
	}
	if fpga.HardwareGenerations != 1 {
		t.Errorf("staggered FPGA generations %d, want 1 (span 4y < 8y cap)", fpga.HardwareGenerations)
	}
	if fpga.SequentialTotalKg <= fpga.TotalKg {
		t.Errorf("sequential accounting must cost more under the cap: %g vs %g",
			fpga.SequentialTotalKg, fpga.TotalKg)
	}
	if asic.SequentialTotalKg != asic.TotalKg {
		t.Errorf("ASIC totals must be schedule-independent: %g vs %g",
			asic.SequentialTotalKg, asic.TotalKg)
	}
	// Dedicated sizing must cost a reusable platform more than shared.
	ded, err := RunTimeline(TimelineRequest{Sizing: "dedicated", Platforms: KindSpecs("fpga", "asic")})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := RunTimeline(TimelineRequest{Platforms: KindSpecs("fpga", "asic")})
	if err != nil {
		t.Fatal(err)
	}
	if ded.Platforms[0].TotalKg <= shared.Platforms[0].TotalKg {
		t.Errorf("dedicated FPGA %g must exceed shared %g",
			ded.Platforms[0].TotalKg, shared.Platforms[0].TotalKg)
	}
	if ded.Platforms[0].FleetSize != ded.Platforms[0].PeakDemandDevices {
		t.Errorf("dedicated fleet %g must equal peak demand %g",
			ded.Platforms[0].FleetSize, ded.Platforms[0].PeakDemandDevices)
	}
}

// TestRunTimelineValidation exercises the request error paths,
// including the generator bounds: a huge napps must be rejected
// without materializing the timeline (normalization clamps the
// expansion to one entry past the limit), and a negative napps errors
// like /v1/compare instead of silently serving the default.
func TestRunTimelineValidation(t *testing.T) {
	for _, bad := range []TimelineRequest{
		{Domain: "Quantum"},
		{Sizing: "elastic"},
		{ChipLifetimeYears: -1},
		{NApps: -1},
		{NApps: 2_000_000_000},
		{NApps: MaxTimelineDeployments + 1},
		{Platforms: KindSpecs("fpga")},
		{Platforms: KindSpecs("fpga", "fpga")},
		{Platforms: KindSpecs("fpga", "npu")},
		{Deployments: []TimelineDeployment{{LifetimeYears: 1, Volume: -2}}},
		{Deployments: []TimelineDeployment{{StartYears: -1, LifetimeYears: 1, Volume: 1}}},
	} {
		if _, err := RunTimeline(bad); err == nil {
			t.Errorf("request %+v must error", bad)
		}
	}
	if norm := (TimelineRequest{NApps: 2_000_000_000}).Normalized(); len(norm.Workload.Deployments) != MaxTimelineDeployments+1 {
		t.Errorf("oversized generator expanded %d deployments, want the clamp at %d",
			len(norm.Workload.Deployments), MaxTimelineDeployments+1)
	}
	if norm := (TimelineRequest{NApps: -4}).Normalized(); len(norm.Workload.Deployments) != 0 || norm.Workload.NApps != -4 {
		t.Errorf("negative napps must be preserved un-expanded: %+v", norm.Workload)
	}
}

func TestCatalogs(t *testing.T) {
	dl := Devices()
	if len(dl.Devices) != len(device.Catalog()) {
		t.Errorf("device list has %d entries, catalog %d", len(dl.Devices), len(device.Catalog()))
	}
	for _, d := range dl.Devices {
		if d.Name == "" || d.Kind == "" || d.Node == "" {
			t.Errorf("incomplete device %+v", d)
		}
	}
	dm := Domains()
	if len(dm.Domains) != len(isoperf.Domains()) {
		t.Errorf("domain list has %d entries, want %d", len(dm.Domains), len(isoperf.Domains()))
	}
	el := Experiments()
	if len(el.Experiments) == 0 || el.Experiments[0] != "table1" {
		t.Errorf("experiment list %v", el.Experiments)
	}
}

func TestExperimentJSON(t *testing.T) {
	res, err := Experiment("table3")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table3" || len(res.Tables) == 0 {
		t.Fatalf("table3 artifact: %+v", res)
	}
	found := false
	for _, row := range res.Tables[0].Rows {
		if strings.Contains(strings.Join(row, ","), "IndustryFPGA1") {
			found = true
		}
	}
	if !found {
		t.Error("table3 rows missing IndustryFPGA1")
	}
	if _, err := Experiment("fig99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestWriteJSONShape pins the canonical encoding: compact, one
// trailing newline, HTML escaping off.
func TestWriteJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]string{"a": "<b>"}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "{\"a\":\"<b>\"}\n"; got != want {
		t.Errorf("WriteJSON = %q, want %q", got, want)
	}
}
