package api

import (
	"context"
	"errors"
	"testing"
	"time"

	"greenfpga/internal/config"
)

// TestCanceledContextStopsEveryEntryPoint checks each Evaluator entry
// point observes an already-dead context instead of computing.
func TestCanceledContextStopsEveryEntryPoint(t *testing.T) {
	e := NewEvaluator(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	checks := []struct {
		name string
		run  func() error
	}{
		{"Evaluate", func() error {
			_, err := e.Evaluate(ctx, &EvaluateRequest{Scenario: config.Example()})
			return err
		}},
		{"RunCrossover", func() error {
			_, err := e.RunCrossover(ctx, CrossoverRequest{}.Normalized())
			return err
		}},
		{"RunCompare", func() error {
			_, err := e.RunCompare(ctx, CompareRequest{}.Normalized())
			return err
		}},
		{"RunTimeline", func() error {
			_, err := e.RunTimeline(ctx, TimelineRequest{}.Normalized())
			return err
		}},
		{"RunSweep", func() error {
			_, err := e.RunSweep(ctx, SweepRequest{Domain: "Crypto", Axis: "lifetime", Points: 64}.Normalized())
			return err
		}},
		{"RunMonteCarlo", func() error {
			_, err := e.RunMonteCarlo(ctx, MonteCarloRequest{Samples: 5000, Seed: 1}.Normalized())
			return err
		}},
	}
	for _, c := range checks {
		if err := c.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled ctx: err = %v, want context.Canceled", c.name, err)
		}
	}
}

// TestDeadlineStopsLongMonteCarlo checks an expired deadline actually
// halts the draw loop: a study sized for ~10s of compute returns
// context.DeadlineExceeded in a small fraction of that.
func TestDeadlineStopsLongMonteCarlo(t *testing.T) {
	e := NewEvaluator(4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.RunMonteCarlo(ctx, MonteCarloRequest{Samples: 200_000, Seed: 1}.Normalized())
	took := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if took > 5*time.Second {
		t.Errorf("cancellation observed after %v; the workers kept drawing", took)
	}
}

// TestToErrorMapsContextErrors checks the envelope mapping the server
// relies on for 504 and 499 responses.
func TestToErrorMapsContextErrors(t *testing.T) {
	if e := ToError(context.DeadlineExceeded); e.Code != "deadline_exceeded" {
		t.Errorf("DeadlineExceeded maps to %q, want deadline_exceeded", e.Code)
	}
	if e := ToError(context.Canceled); e.Code != "canceled" {
		t.Errorf("Canceled maps to %q, want canceled", e.Code)
	}
	if e := ToError(errors.New("bad domain")); e.Code != "invalid_request" {
		t.Errorf("plain error maps to %q, want invalid_request", e.Code)
	}
}
