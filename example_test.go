package greenfpga_test

import (
	"fmt"
	"log"

	"greenfpga"
)

// Example reproduces the paper's headline: for DNN accelerators at
// one million units and two-year application lifetimes, the FPGA
// becomes the lower-carbon platform from the sixth application.
func Example() {
	domain, err := greenfpga.DomainByName("DNN")
	if err != nil {
		log.Fatal(err)
	}
	pair, err := domain.Pair()
	if err != nil {
		log.Fatal(err)
	}
	n, found, err := pair.CrossoverNumApps(greenfpga.Years(2), 1e6, 0, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, n)
	// Output: true 6
}

// ExampleDomains prints the Table 2 iso-performance ratios.
func ExampleDomains() {
	for _, d := range greenfpga.Domains() {
		fmt.Printf("%s %gx area %gx power\n", d.Name, d.AreaRatio, d.PowerRatio)
	}
	// Output:
	// DNN 4x area 3x power
	// ImgProc 7.42x area 1.25x power
	// Crypto 1x area 1x power
}

// ExamplePair_CrossoverLifetime solves the paper's experiment-B
// question: below which application lifetime do FPGAs win?
func ExamplePair_CrossoverLifetime() {
	domain, err := greenfpga.DomainByName("DNN")
	if err != nil {
		log.Fatal(err)
	}
	pair, err := domain.Pair()
	if err != nil {
		log.Fatal(err)
	}
	tstar, found, err := pair.CrossoverLifetime(5, 1e6, 0,
		greenfpga.Years(0.2), greenfpga.Years(2.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v %.2f years\n", found, tstar.Years())
	// Output: true 1.59 years
}

// ExampleDeviceByName reads a Table 3 industry testcase.
func ExampleDeviceByName() {
	spec, err := greenfpga.DeviceByName("IndustryASIC2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s at %s, %s\n", spec.Name, spec.DieArea, spec.Node.Name, spec.PeakPower)
	// Output: IndustryASIC2: 600 mm^2 at 7nm, 192 W
}

// ExampleKernelByName sizes an application from a throughput target.
func ExampleKernelByName() {
	k, err := greenfpga.KernelByName("resnet50-int8")
	if err != nil {
		log.Fatal(err)
	}
	d, err := k.Demand(5000) // GOPS
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d PEs, %.1f Mgates\n", d.ProcessingElements, d.Gates/1e6)
	// Output: 3 PEs, 4.8 Mgates
}
