// Package greenfpga estimates the total carbon footprint (CFP) of
// FPGA- and ASIC-based computing across the device lifecycle — design,
// manufacturing, packaging, deployment and end-of-life — reproducing
// "GreenFPGA: Evaluating FPGAs as Environmentally Sustainable Computing
// Solutions" (Choppali Sudarshan, Arora, Chhabria; DAC 2024).
//
// The central question the tool answers: when does FPGA
// reconfigurability — one fleet amortized across many applications —
// beat manufacturing a new ASIC per application? The paper's equations:
//
//	C_ASIC = sum_i (C_emb,i + T_i x C_deploy,i)   // new chips per app
//	C_FPGA = C_emb + sum_i T_i x C_deploy,i       // embodied paid once
//
// Quick start:
//
//	pair, _ := greenfpga.DomainByName("DNN")      // Table 2 testcase
//	pr, _ := pair.Pair()
//	cmp, _ := pr.Compare(greenfpga.Uniform("apps", 6, greenfpga.Years(2), 1e6, 0))
//	fmt.Println(cmp.Ratio)                        // < 1: FPGA wins
//
// This root package is a facade over the internal model packages; it
// re-exports everything a downstream user needs: the scenario engine
// (Platform, Scenario, Evaluate), the iso-performance testcases of the
// paper's Table 2, the industry device catalog of Table 3, quantity
// constructors, and the experiment registry that regenerates every
// table and figure in the paper.
package greenfpga

import (
	"context"
	"fmt"
	"io"
	"math"

	"greenfpga/internal/config"
	"greenfpga/internal/core"
	"greenfpga/internal/device"
	"greenfpga/internal/dse"
	"greenfpga/internal/experiments"
	"greenfpga/internal/grid"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/lifecycle"
	"greenfpga/internal/montecarlo"
	"greenfpga/internal/planner"
	"greenfpga/internal/technode"
	"greenfpga/internal/units"
	"greenfpga/internal/workload"
)

// DeviceKind distinguishes fixed-function from reconfigurable silicon.
type DeviceKind = device.Kind

// Device kinds. Each kind carries a ReusePolicy (see
// DeviceKind.Policy) that selects its accounting equation.
const (
	// ASIC devices serve one application and are remanufactured for
	// each new one.
	ASIC = device.ASIC
	// FPGA devices are reconfigured across applications.
	FPGA = device.FPGA
	// GPU devices are reprogrammed in software across applications.
	GPU = device.GPU
	// CPU devices are general-purpose reusable hosts.
	CPU = device.CPU
)

// ReusePolicy states how a device kind amortizes embodied carbon
// (Eq. 1 vs Eq. 2), whether it gangs devices by gate capacity, and
// its default application-development class.
type ReusePolicy = device.ReusePolicy

// Scenario engine types.
type (
	// Platform bundles a device with every lifecycle-model input.
	Platform = core.Platform
	// Scenario is a sequence of applications served back to back.
	Scenario = core.Scenario
	// Application is one workload (lifetime, volume, size).
	Application = core.Application
	// Assessment is a platform's evaluated CFP with its breakdown.
	Assessment = core.Assessment
	// Breakdown splits CFP into design/manufacturing/packaging/EOL/
	// operation/app-development components.
	Breakdown = core.Breakdown
	// Pair couples an FPGA platform with its iso-performance ASIC.
	Pair = core.Pair
	// Comparison is a pair evaluated on one scenario.
	Comparison = core.Comparison
	// PlatformSet is an ordered list of platforms compared on one
	// shared scenario — the N-platform generalization of Pair.
	PlatformSet = core.Set
	// CompiledPlatformSet is a set compiled for dense sweeps.
	CompiledPlatformSet = core.CompiledSet
	// SetComparison is a set evaluated on one scenario: N assessments,
	// pairwise ratios, and the minimum-CFP winner.
	SetComparison = core.SetComparison
	// CompiledPlatform is a platform with its platform-constant
	// quantities cached; evaluating it skips the per-call model
	// re-derivation of Evaluate.
	CompiledPlatform = core.Compiled
	// CompiledPair is a pair compiled for dense sweeps, crossover
	// probes and Monte-Carlo draws.
	CompiledPair = core.CompiledPair
	// Schedule is a time-phased deployment plan: applications
	// arriving, retiring and overlapping on one wall-clock timeline —
	// the generalization of Scenario's back-to-back sequence.
	Schedule = core.Schedule
	// Deployment is one scheduled application residency.
	Deployment = core.Deployment
	// ScheduleAssessment is an assessment plus timeline quantities
	// (span, peak concurrency, peak device demand).
	ScheduleAssessment = core.ScheduleAssessment
	// ScheduleComparison is a compiled set evaluated on one schedule.
	ScheduleComparison = core.ScheduleComparison
	// FleetSizing selects shared vs dedicated provisioning of a
	// reusable fleet's overlapping residents.
	FleetSizing = core.FleetSizing
	// DeviceSpec describes an ASIC or FPGA device.
	DeviceSpec = device.Spec
	// Domain is one Table 2 iso-performance testcase.
	Domain = isoperf.Domain
	// TechNode holds per-node manufacturing coefficients.
	TechNode = technode.Node
	// GridMix is a blend of energy sources.
	GridMix = grid.Mix
	// LifecycleConfig drives a cumulative-CFP timeline simulation.
	LifecycleConfig = lifecycle.Config
	// LifecycleResult is a timeline simulation output.
	LifecycleResult = lifecycle.Result
	// ScenarioConfig is the JSON scenario document of the CLI.
	ScenarioConfig = config.Scenario
	// ExperimentOutput is one regenerated paper table or figure.
	ExperimentOutput = experiments.Output
	// MCConfig drives a Monte-Carlo uncertainty study.
	MCConfig = montecarlo.Config
	// MCParam is one uncertain input parameter.
	MCParam = montecarlo.Param
	// MCResult summarizes a study (percentiles, tornado ranking).
	MCResult = montecarlo.Result
	// UniformDist is a flat distribution over a Table 1 range.
	UniformDist = montecarlo.Uniform
	// TriangularDist is a peaked distribution over a range.
	TriangularDist = montecarlo.Triangular
	// FixedDist pins a parameter.
	FixedDist = montecarlo.Fixed
	// Kernel is a parameterizable accelerator workload.
	Kernel = workload.Kernel
	// KernelDemand is a kernel's hardware requirement at a target
	// throughput.
	KernelDemand = workload.Demand
	// DSEInputs drives the carbon-aware design-space explorer.
	DSEInputs = dse.Inputs
	// DSEResult is a ranked exploration outcome.
	DSEResult = dse.Result
	// DSECandidate is one explored design point.
	DSECandidate = dse.Candidate
	// PlannerInputs drives the portfolio platform planner.
	PlannerInputs = planner.Inputs
	// Plan is a portfolio platform assignment.
	Plan = planner.Plan
)

// Quantity types (see the units documentation for conversions).
type (
	// Mass is CO2-equivalent mass in kilograms.
	Mass = units.Mass
	// Energy is electrical energy in kilowatt-hours.
	Energy = units.Energy
	// Power is electrical power in watts.
	Power = units.Power
	// Area is silicon area in square millimetres.
	Area = units.Area
	// YearSpan is calendar time in years.
	YearSpan = units.Years
	// CarbonIntensity is kg CO2e per kWh.
	CarbonIntensity = units.CarbonIntensity
)

// Quantity constructors.
var (
	// Kilograms, Tonnes and Kilotonnes build CO2e masses.
	Kilograms  = units.Kilograms
	Tonnes     = units.Tonnes
	Kilotonnes = units.Kilotonnes
	// Watts and Kilowatts build powers.
	Watts     = units.Watts
	Kilowatts = units.Kilowatts
	// KWh, MWh and GWh build energies.
	KWh = units.KWh
	MWh = units.MWh
	GWh = units.GWh
	// MM2 and CM2 build areas.
	MM2 = units.MM2
	CM2 = units.CM2
	// Years, Months and Hours build calendar spans.
	Years  = units.YearsOf
	Months = units.Months
	Hours  = units.Hours
	// GramsPerKWh and KgPerKWh build carbon intensities.
	GramsPerKWh = units.GramsPerKWh
	KgPerKWh    = units.KgPerKWh
)

// Evaluate computes the total CFP of running the scenario on the
// platform (Eq. 1 for ASICs, Eq. 2 for FPGAs).
func Evaluate(p Platform, s Scenario) (Assessment, error) { return core.Evaluate(p, s) }

// Compile validates the platform once and caches every
// platform-constant quantity of the lifecycle models. Use the result's
// Evaluate/EvaluateUniform for dense sweeps: per-call cost drops from
// re-running the fab, packaging, EOL, design and deployment models to
// a handful of multiplications.
func Compile(p Platform) (*CompiledPlatform, error) { return core.Compile(p) }

// CompilePair compiles both sides of a pair for sweep and crossover
// workloads.
func CompilePair(pr Pair) (CompiledPair, error) { return pr.Compile() }

// CompileSet compiles every platform of a set for N-way comparison
// workloads.
func CompileSet(set PlatformSet) (CompiledPlatformSet, error) { return set.Compile() }

// Uniform builds a scenario of n identical applications.
func Uniform(name string, n int, lifetime YearSpan, volume, sizeGates float64) Scenario {
	return core.Uniform(name, n, lifetime, volume, sizeGates)
}

// Staggered builds a schedule of n identical applications arriving
// every interval years (0 means simultaneously), the timeline
// generalization of Uniform.
func Staggered(name string, n int, interval, lifetime YearSpan, volume, sizeGates float64) Schedule {
	return core.Staggered(name, n, interval, lifetime, volume, sizeGates)
}

// Sequential serializes a scenario onto the timeline back to back;
// evaluating the result reproduces Evaluate exactly.
func Sequential(s Scenario) Schedule { return core.Sequential(s) }

// Fleet-sizing policies for overlapping residents of a reusable
// fleet.
const (
	// SizeShared time-shares the fleet across residents (the paper's
	// Eq. 2 reading; the default).
	SizeShared = core.SizeShared
	// SizeDedicated gives every resident its own devices.
	SizeDedicated = core.SizeDedicated
)

// Domains lists the iso-performance testcases of Table 2 (DNN,
// ImgProc, Crypto).
func Domains() []Domain { return isoperf.Domains() }

// DomainByName looks up a Table 2 domain.
func DomainByName(name string) (Domain, error) { return isoperf.ByName(name) }

// IndustryDevices lists the Table 3 catalog.
func IndustryDevices() []DeviceSpec { return device.Catalog() }

// DeviceByName looks up a Table 3 catalog device.
func DeviceByName(name string) (DeviceSpec, error) { return device.ByName(name) }

// NodeByName looks up a technology node ("28nm".."3nm").
func NodeByName(name string) (TechNode, error) { return technode.ByName(name) }

// GridByRegion returns a preset regional energy mix.
func GridByRegion(region string) (GridMix, error) { return grid.ByRegion(grid.Region(region)) }

// RunLifecycle simulates cumulative CFP over wall-clock time (the
// paper's Fig. 9 setting).
func RunLifecycle(cfg LifecycleConfig) (LifecycleResult, error) { return lifecycle.Run(cfg) }

// Experiments lists the registered paper-reproduction experiments.
func Experiments() []string { return experiments.List() }

// RunExperiment regenerates one paper table or figure by ID.
func RunExperiment(id string) (*ExperimentOutput, error) { return experiments.Run(id) }

// RenderExperiment runs an experiment and writes it to w.
func RenderExperiment(id string, w io.Writer) error {
	out, err := experiments.Run(id)
	if err != nil {
		return err
	}
	return out.Render(w)
}

// RunMonteCarlo executes a Monte-Carlo uncertainty study. Draws are
// evaluated in parallel — the model callback must be safe for
// concurrent use — with results identical across worker counts.
func RunMonteCarlo(cfg MCConfig) (MCResult, error) { return montecarlo.Run(cfg) }

// DomainRatioStudy propagates the paper's Table 1 parameter ranges
// through a domain pair's FPGA:ASIC CFP ratio: duty cycle, design
// staffing, app-development effort, recycled sourcing, EOL recycling
// and application lifetime are drawn per sample, everything else is
// held at the domain's calibration. Shared by `greenfpga mc`, the
// /v1/mc service endpoint and the uncertainty example.
func DomainRatioStudy(d Domain, nApps, samples int, seed int64) (MCResult, error) {
	return DomainRatioStudyBetween(d, FPGA, ASIC, nApps, samples, seed)
}

// DomainRatioStudyBetween generalizes DomainRatioStudy to any two
// platform kinds of the domain's iso-performance set: the study's
// output is kindA's total over kindB's per draw. The Table 1 draws
// perturb the shared calibration (duty cycle, design staffing,
// recycled sourcing, EOL recycling, application lifetime); the
// reconfiguration-flow draws (t_fe/t_be) apply to FPGA-kind members,
// whose app-development is the paper's hardware flow — GPU/CPU
// members keep their software-port profiles. DomainRatioStudy is
// exactly the (FPGA, ASIC) instance.
func DomainRatioStudyBetween(d Domain, kindA, kindB DeviceKind, nApps, samples int, seed int64) (MCResult, error) {
	return DomainRatioStudyBetweenCtx(context.Background(), d, kindA, kindB, nApps, samples, seed)
}

// DomainRatioStudyBetweenCtx is DomainRatioStudyBetween under a
// context: every Monte-Carlo worker checks ctx before its draw, so a
// cancelled study (a served request past its deadline, an interrupted
// CLI run) stops evaluating instead of grinding through the remaining
// samples. The draws consumed before cancellation are identical to an
// uncancelled run's.
func DomainRatioStudyBetweenCtx(ctx context.Context, d Domain, kindA, kindB DeviceKind, nApps, samples int, seed int64) (MCResult, error) {
	return RunMonteCarlo(DomainRatioStudyConfig(ctx, d, kindA, kindB, nApps, samples, seed))
}

// DomainRatioStudyConfig builds the Monte-Carlo configuration that
// DomainRatioStudyBetweenCtx runs, without running it. Callers that
// need more than a one-shot study — chunked evaluation through
// montecarlo.RunRange/Finalize, as the async jobs layer does to
// checkpoint and resume — get the exact same parameter set and model
// closure, so their draws are bit-identical to the synchronous path's.
func DomainRatioStudyConfig(ctx context.Context, d Domain, kindA, kindB DeviceKind, nApps, samples int, seed int64) MCConfig {
	clampHi := d.DutyCycle * 1.5
	if clampHi > 1 {
		clampHi = 1
	}
	member := func(set PlatformSet, kind DeviceKind) (Platform, error) {
		p, err := set.Member(kind)
		if err != nil {
			return Platform{}, fmt.Errorf("greenfpga: domain %s: %w", d.Name, err)
		}
		return p, nil
	}
	return MCConfig{
		Samples: samples,
		Seed:    seed,
		Params: []MCParam{
			{Name: "duty_cycle", Dist: TriangularDist{Lo: d.DutyCycle * 0.5, Mode: d.DutyCycle, Hi: clampHi}},
			{Name: "t_fe_months", Dist: UniformDist{Lo: 1.5, Hi: 2.5}},
			{Name: "t_be_months", Dist: UniformDist{Lo: 0.5, Hi: 1.5}},
			{Name: "design_staff", Dist: TriangularDist{Lo: d.DesignEngineers * 0.7, Mode: d.DesignEngineers, Hi: d.DesignEngineers * 1.3}},
			{Name: "recycled_fraction", Dist: UniformDist{Lo: 0, Hi: 1}},
			{Name: "eol_delta", Dist: UniformDist{Lo: 0.05, Hi: 0.95}},
			{Name: "app_lifetime_years", Dist: UniformDist{Lo: 1, Hi: 3}},
		},
		Model: func(draw map[string]float64) (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			dd := d
			dd.DutyCycle = draw["duty_cycle"]
			dd.DesignEngineers = draw["design_staff"]
			set, err := dd.Set()
			if err != nil {
				return 0, err
			}
			pa, err := member(set, kindA)
			if err != nil {
				return 0, err
			}
			pb, err := member(set, kindB)
			if err != nil {
				return 0, err
			}
			for _, p := range []*core.Platform{&pa, &pb} {
				if p.Spec.Kind == FPGA {
					ad := p.AppDevProfile()
					ad.FrontEnd = units.Months(draw["t_fe_months"])
					ad.BackEnd = units.Months(draw["t_be_months"])
					p.AppDev = &ad
				}
				p.RecycledMaterialFraction = draw["recycled_fraction"]
				p.EOL.RecycleFraction = draw["eol_delta"]
			}
			s := core.Uniform("mc", nApps,
				units.YearsOf(draw["app_lifetime_years"]), isoperf.ReferenceVolume, 0)
			fa, err := core.Evaluate(pa, s)
			if err != nil {
				return 0, fmt.Errorf("greenfpga: %s side: %w", kindA, err)
			}
			fb, err := core.Evaluate(pb, s)
			if err != nil {
				return 0, fmt.Errorf("greenfpga: %s side: %w", kindB, err)
			}
			if bt := fb.Total().Kilograms(); bt != 0 {
				return fa.Total().Kilograms() / bt, nil
			}
			return math.Inf(1), nil
		},
	}
}

// Kernels lists the built-in workload library.
func Kernels() []Kernel { return workload.Library() }

// KernelByName looks up a workload kernel.
func KernelByName(name string) (Kernel, error) { return workload.ByName(name) }

// AppFromKernel sizes a kernel for a throughput target and wraps it as
// a scenario application (SizeGates drives N_FPGA).
func AppFromKernel(k Kernel, target float64, lifetime YearSpan, volume float64) (Application, error) {
	return workload.Application(k, target, lifetime, volume)
}

// KernelRoadmap builds a multi-generation scenario with a growing
// throughput target.
func KernelRoadmap(k Kernel, initialTarget, growthFactor float64, generations int,
	lifetime YearSpan, volume float64) (Scenario, error) {
	return workload.Roadmap(k, initialTarget, growthFactor, generations, lifetime, volume)
}

// ExploreDesignSpace runs the carbon-aware design-space explorer.
func ExploreDesignSpace(in DSEInputs) (DSEResult, error) { return dse.Explore(in) }

// OptimizePortfolio assigns each application of a portfolio to the
// shared FPGA fleet or a dedicated ASIC, minimizing total CFP.
func OptimizePortfolio(in PlannerInputs) (Plan, error) { return planner.Optimize(in) }

// LoadScenarioConfig reads a JSON scenario document.
func LoadScenarioConfig(path string) (*ScenarioConfig, error) { return config.Load(path) }

// ExampleScenarioConfig returns a complete sample JSON document.
func ExampleScenarioConfig() *ScenarioConfig { return config.Example() }
