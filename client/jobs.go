package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"greenfpga/api"
)

// This file is the client side of the asynchronous job surface: submit
// a compute request to /v1/jobs, poll its record, wait it out, fetch
// the result (the exact bytes the synchronous endpoint would answer)
// and cancel it. Every call runs under the client's retry policy —
// jobs are keyed server-side by content address, so a replayed poll or
// result fetch is idempotent (a replayed submit creates a second job,
// but both converge on the same stored result bytes).

// SubmitJob submits one compute request for asynchronous, durable
// execution. endpoint is the compute endpoint name ("mc", "sweep",
// "evaluate", ... or the "/v1/..." path) and request its request
// document (a typed api request or raw JSON). The returned status
// carries the job ID to poll.
func (c *Client) SubmitJob(ctx context.Context, endpoint string, request any) (*api.JobStatus, error) {
	raw, ok := request.(json.RawMessage)
	if !ok {
		data, err := api.EncodeJSON(request)
		if err != nil {
			return nil, err
		}
		raw = data
	}
	out := &api.JobStatus{}
	return out, c.do(ctx, http.MethodPost, "/v1/jobs",
		&api.JobSubmitRequest{Endpoint: endpoint, Request: raw}, out)
}

// Job fetches one job's current record.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	out := &api.JobStatus{}
	return out, c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, out)
}

// Jobs lists the server's jobs, newest first.
func (c *Client) Jobs(ctx context.Context) (*api.JobList, error) {
	out := &api.JobList{}
	return out, c.do(ctx, http.MethodGet, "/v1/jobs", nil, out)
}

// WaitJob polls a job until it reaches a terminal state (done, failed
// or canceled), sleeping poll between polls (default 250ms), and
// returns the terminal record. It does not error on a failed or
// canceled job — the record says so — only on polling failures or a
// finished context.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*api.JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return nil, fmt.Errorf("client: waiting on job %s: %w", id, err)
		}
	}
}

// JobResult decodes a done job's result into out — the same typed
// response the synchronous endpoint returns (e.g. *api.MonteCarloResponse
// for an "mc" job).
func (c *Client) JobResult(ctx context.Context, id string, out any) error {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, out)
}

// CancelJob cancels an active job (after its current chunk) and
// removes its record and checkpoints.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}
