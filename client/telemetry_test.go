package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/telemetry"
)

// TestStatusErrorCarriesEchoedRequestID checks a failing exchange
// surfaces the server's echoed X-Request-ID on the error, so the
// caller can quote the exact ID the server logged.
func TestStatusErrorCarriesEchoedRequestID(t *testing.T) {
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "server-rewrote-this")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"code":"internal","message":"boom"}`)
	}))
	t.Cleanup(hts.Close)
	err := New(hts.URL).Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.RequestID != "server-rewrote-this" {
		t.Errorf("RequestID = %q, want the server's echoed ID", se.RequestID)
	}
}

// TestStatusErrorFallsBackToSentID checks that against a server that
// echoes nothing, the error still carries the ID the request was sent
// with — there is always something to correlate on.
func TestStatusErrorFallsBackToSentID(t *testing.T) {
	var mu sync.Mutex
	var seen string
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = r.Header.Get("X-Request-ID")
		mu.Unlock()
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"code":"invalid_request","message":"no"}`)
	}))
	t.Cleanup(hts.Close)
	err := New(hts.URL).Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen == "" || !telemetry.ValidRequestID(seen) {
		t.Fatalf("request carried X-Request-ID %q, want a generated valid ID", seen)
	}
	if se.RequestID != seen {
		t.Errorf("RequestID = %q, want the sent ID %q", se.RequestID, seen)
	}
}

// TestRetryLogCarriesStableRequestID checks WithRetryLog observes
// every retry with the one ID all attempts were sent under, so the
// server's access-log lines for the whole retry schedule correlate.
func TestRetryLogCarriesStableRequestID(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Request-ID"))
		n := len(seen)
		mu.Unlock()
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"code":"overloaded","message":"shed"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	t.Cleanup(hts.Close)
	var events []RetryEvent
	c := New(hts.URL,
		WithRetry(RetryPolicy{MaxAttempts: 4}),
		WithRetryLog(func(e RetryEvent) { events = append(events, e) }))
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after sheds: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d retry events, want 2", len(events))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 || seen[0] == "" || seen[0] != seen[1] || seen[1] != seen[2] {
		t.Fatalf("attempts carried IDs %q, want one stable ID across all three", seen)
	}
	for i, e := range events {
		if e.Attempt != i+1 {
			t.Errorf("event %d: Attempt = %d, want %d", i, e.Attempt, i+1)
		}
		if e.RequestID != seen[0] {
			t.Errorf("event %d: RequestID = %q, want the wire ID %q", i, e.RequestID, seen[0])
		}
		if e.Err == nil {
			t.Errorf("event %d: nil Err", i)
		}
		var se *StatusError
		if !errors.As(e.Err, &se) || se.Status != http.StatusServiceUnavailable {
			t.Errorf("event %d: Err = %v, want the 503 StatusError", i, e.Err)
		}
		if e.Delay <= 0 {
			t.Errorf("event %d: Delay = %v, want > 0", i, e.Delay)
		}
	}
}

// TestVersionRoundTrip checks the client decodes the /v1/version
// document.
func TestVersionRoundTrip(t *testing.T) {
	want := api.VersionInfo{Version: "v1.2.3", GoVersion: "go1.24.0", Revision: "abcdef", Dirty: true}
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/version" {
			t.Errorf("path %q, want /v1/version", r.URL.Path)
		}
		_ = api.WriteJSON(w, want)
	}))
	t.Cleanup(hts.Close)
	got, err := New(hts.URL).Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *got != want {
		t.Errorf("Version() = %+v, want %+v", *got, want)
	}
}
