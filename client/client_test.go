package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"greenfpga/api"
	"greenfpga/internal/config"
	"greenfpga/internal/server"
)

// newPair spins a service and a client bound to it.
func newPair(t *testing.T) *Client {
	t.Helper()
	hts := httptest.NewServer(server.New(server.Options{}).Handler())
	t.Cleanup(hts.Close)
	return New(hts.URL, WithHTTPClient(hts.Client()))
}

// TestRoundTrip drives every client method against a live handler.
func TestRoundTrip(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	devices, err := c.Devices(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices.Devices) == 0 || devices.Devices[0].Name == "" {
		t.Errorf("devices: %+v", devices)
	}
	domains, err := c.Domains(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains.Domains) != 3 {
		t.Errorf("domains: %+v", domains)
	}
	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps.Experiments) == 0 {
		t.Error("experiment list empty")
	}
	art, err := c.Experiment(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "table2" || len(art.Tables) == 0 {
		t.Errorf("artifact: %+v", art)
	}

	req := &api.EvaluateRequest{Scenario: config.Example()}
	eval, err := c.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if eval.FPGA == nil || eval.ASIC == nil || eval.Ratio == nil {
		t.Fatalf("evaluate: %+v", eval)
	}
	// The client must observe exactly what the shared compute path
	// (and therefore the CLI) produces.
	want, err := api.NewEvaluator(4).Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if eval.FPGA.TotalKg != want.FPGA.TotalKg || eval.ASIC.TotalKg != want.ASIC.TotalKg {
		t.Errorf("evaluate totals differ from shared compute: %+v vs %+v", eval, want)
	}

	batch, err := c.EvaluateBatch(ctx, &api.BatchEvaluateRequest{
		Requests: []api.EvaluateRequest{*req, *req},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Response == nil {
		t.Fatalf("batch: %+v", batch)
	}
	if batch.Results[0].Response.FPGA.TotalKg != eval.FPGA.TotalKg {
		t.Error("batch result differs from single evaluate")
	}

	cross, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "DNN"})
	if err != nil {
		t.Fatal(err)
	}
	if !cross.A2FNumApps.Found || cross.A2FNumApps.Value != 6 {
		t.Errorf("crossover: %+v", cross)
	}

	cmp, err := c.Compare(ctx, api.CompareRequest{Domain: "DNN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Platforms) != 4 || cmp.Winner == "" || len(cmp.Frontier) != 12 {
		t.Errorf("compare: %+v", cmp)
	}

	sw, err := c.Sweep(ctx, api.SweepRequest{Domain: "DNN", Axis: "napps"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 12 {
		t.Errorf("sweep: %d points", len(sw.Points))
	}

	mc, err := c.MonteCarlo(ctx, api.MonteCarloRequest{Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Samples != 100 || len(mc.Tornado) == 0 {
		t.Errorf("mc: %+v", mc)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "greenfpga_result_cache_misses_total") {
		t.Errorf("metrics text:\n%s", metrics)
	}
}

// TestErrorMapping checks the envelope surfaces as a typed error.
func TestErrorMapping(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()

	_, err := c.Evaluate(ctx, &api.EvaluateRequest{})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StatusError, got %v", err)
	}
	if se.Status != http.StatusBadRequest || se.Err.Code != "invalid_request" {
		t.Errorf("evaluate error: %+v", se)
	}
	var envelope *api.Error
	if !errors.As(err, &envelope) || envelope.Code != "invalid_request" {
		t.Errorf("unwrap to *api.Error failed: %v", err)
	}

	_, err = c.Experiment(ctx, "fig99")
	if !errors.As(err, &se) || se.Status != http.StatusNotFound || se.Err.Code != "not_found" {
		t.Errorf("unknown experiment error: %v", err)
	}

	_, err = c.Crossover(ctx, api.CrossoverRequest{Domain: "Quantum"})
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Errorf("unknown domain error: %v", err)
	}
}
