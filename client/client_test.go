package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/config"
	"greenfpga/internal/server"
)

// newPair spins a service and a client bound to it.
func newPair(t *testing.T) *Client {
	t.Helper()
	return newPairOpts(t, server.Options{})
}

// newPairOpts is newPair with server options (e.g. a durable store for
// the job endpoints).
func newPairOpts(t *testing.T, opts server.Options) *Client {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return New(hts.URL, WithHTTPClient(hts.Client()))
}

// TestRoundTrip drives every client method against a live handler.
func TestRoundTrip(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	devices, err := c.Devices(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(devices.Devices) == 0 || devices.Devices[0].Name == "" {
		t.Errorf("devices: %+v", devices)
	}
	domains, err := c.Domains(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(domains.Domains) != 3 {
		t.Errorf("domains: %+v", domains)
	}
	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps.Experiments) == 0 {
		t.Error("experiment list empty")
	}
	art, err := c.Experiment(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "table2" || len(art.Tables) == 0 {
		t.Errorf("artifact: %+v", art)
	}

	req := &api.EvaluateRequest{Scenario: config.Example()}
	eval, err := c.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if eval.FPGA == nil || eval.ASIC == nil || eval.Ratio == nil {
		t.Fatalf("evaluate: %+v", eval)
	}
	// The client must observe exactly what the shared compute path
	// (and therefore the CLI) produces.
	want, err := api.NewEvaluator(4).Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if eval.FPGA.TotalKg != want.FPGA.TotalKg || eval.ASIC.TotalKg != want.ASIC.TotalKg {
		t.Errorf("evaluate totals differ from shared compute: %+v vs %+v", eval, want)
	}

	batch, err := c.EvaluateBatch(ctx, &api.BatchEvaluateRequest{
		Requests: []api.EvaluateRequest{*req, *req},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Response == nil {
		t.Fatalf("batch: %+v", batch)
	}
	if batch.Results[0].Response.FPGA.TotalKg != eval.FPGA.TotalKg {
		t.Error("batch result differs from single evaluate")
	}

	cross, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "DNN"})
	if err != nil {
		t.Fatal(err)
	}
	if !cross.A2FNumApps.Found || cross.A2FNumApps.Value != 6 {
		t.Errorf("crossover: %+v", cross)
	}

	cmp, err := c.Compare(ctx, api.CompareRequest{Domain: "DNN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Platforms) != 4 || cmp.Winner == "" || len(cmp.Frontier) != 12 {
		t.Errorf("compare: %+v", cmp)
	}

	tl, err := c.Timeline(ctx, api.TimelineRequest{Domain: "DNN", ChipLifetimeYears: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Platforms) != 4 || tl.SpanYears != 4 || tl.PeakConcurrent != 4 || tl.Winner == "" {
		t.Errorf("timeline: %+v", tl)
	}

	sw, err := c.Sweep(ctx, api.SweepRequest{Domain: "DNN", Axis: "napps"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 12 {
		t.Errorf("sweep: %d points", len(sw.Points))
	}

	mc, err := c.MonteCarlo(ctx, api.MonteCarloRequest{Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Samples != 100 || len(mc.Tornado) == 0 {
		t.Errorf("mc: %+v", mc)
	}

	regions, err := c.Regions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions.Regions) == 0 || regions.Regions[0].Name == "" {
		t.Errorf("regions: %+v", regions)
	}

	fleet, err := c.Fleet(ctx, api.FleetRequest{Regions: []string{"iceland", "oregon"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Regions) != 2 || fleet.Best.Region != "iceland" {
		t.Errorf("fleet: %+v", fleet)
	}

	// Spec-form requests travel the same typed surface: a platform-set
	// sweep comes back with per-platform totals, and a GPU-vs-FPGA
	// uncertainty study echoes its pair.
	setSweep, err := c.Sweep(ctx, api.SweepRequest{
		Axis: "napps", To: 3, Platforms: api.KindSpecs("gpu", "cpu"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(setSweep.Platforms) != 2 || len(setSweep.Points) != 3 || len(setSweep.Points[0].TotalsKg) != 2 {
		t.Errorf("spec sweep: %+v", setSweep)
	}
	gpuMC, err := c.MonteCarlo(ctx, api.MonteCarloRequest{
		Samples: 40, Platforms: api.KindSpecs("gpu", "fpga"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if gpuMC.PlatformA != "gpu" || gpuMC.PlatformB != "fpga" {
		t.Errorf("spec mc echoes: %+v", gpuMC)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "greenfpga_result_cache_misses_total") {
		t.Errorf("metrics text:\n%s", metrics)
	}
}

// TestErrorMapping checks the envelope surfaces as a typed error.
func TestErrorMapping(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()

	_, err := c.Evaluate(ctx, &api.EvaluateRequest{})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StatusError, got %v", err)
	}
	if se.Status != http.StatusBadRequest || se.Err.Code != "invalid_request" {
		t.Errorf("evaluate error: %+v", se)
	}
	var envelope *api.Error
	if !errors.As(err, &envelope) || envelope.Code != "invalid_request" {
		t.Errorf("unwrap to *api.Error failed: %v", err)
	}

	_, err = c.Experiment(ctx, "fig99")
	if !errors.As(err, &se) || se.Status != http.StatusNotFound || se.Err.Code != "not_found" {
		t.Errorf("unknown experiment error: %v", err)
	}

	_, err = c.Crossover(ctx, api.CrossoverRequest{Domain: "Quantum"})
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Errorf("unknown domain error: %v", err)
	}

	_, err = c.Timeline(ctx, api.TimelineRequest{Sizing: "elastic"})
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest || se.Err.Code != "invalid_request" {
		t.Errorf("bad timeline sizing error: %v", err)
	}
}

// TestNonEnvelopeErrors checks the fallback when a non-2xx body is not
// the service's JSON envelope: net/http's plain-text 404/405 pages and
// arbitrary proxy bodies surface as code "http_error" with the raw
// body as the message.
func TestNonEnvelopeErrors(t *testing.T) {
	ctx := context.Background()

	// A real server's unregistered path: plain-text 404.
	c := newPair(t)
	var se *StatusError
	err := c.do(ctx, http.MethodGet, "/v1/nope", nil, &struct{}{})
	if !errors.As(err, &se) || se.Status != http.StatusNotFound || se.Err.Code != "http_error" {
		t.Errorf("plain 404: %v", err)
	}

	// A proxy-shaped 503 with an HTML body.
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "<html>upstream down</html>")
	}))
	t.Cleanup(hts.Close)
	pc := New(hts.URL, WithHTTPClient(hts.Client()))
	_, err = pc.Crossover(ctx, api.CrossoverRequest{})
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.Err.Code != "http_error" {
		t.Fatalf("html 503: %v", err)
	}
	if !strings.Contains(se.Err.Message, "upstream down") {
		t.Errorf("raw body missing from message: %q", se.Err.Message)
	}
	if !strings.Contains(se.Error(), "503") {
		t.Errorf("status missing from Error(): %q", se.Error())
	}

	// An envelope missing its code falls back to http_error too.
	hts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"message":"no code"}`)
	}))
	t.Cleanup(hts2.Close)
	cc := New(hts2.URL, WithHTTPClient(hts2.Client()))
	_, err = cc.Crossover(ctx, api.CrossoverRequest{})
	if !errors.As(err, &se) || se.Err.Code != "http_error" {
		t.Errorf("codeless envelope: %v", err)
	}

	// Metrics propagates non-200s with the raw body.
	if _, err := pc.Metrics(ctx); !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Errorf("metrics error: %v", err)
	}
}

// TestMalformedBodies checks 2xx responses whose bodies do not decode:
// the JSON error must surface rather than a zero-valued response.
func TestMalformedBodies(t *testing.T) {
	ctx := context.Background()
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"domain": "DNN", "a2f_num_apps": {`) // truncated
	}))
	t.Cleanup(hts.Close)
	c := New(hts.URL, WithHTTPClient(hts.Client()))
	if _, err := c.Crossover(ctx, api.CrossoverRequest{}); err == nil {
		t.Error("truncated body must error")
	}

	// A healthy status line with a non-ok payload.
	hts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"degraded"}`)
	}))
	t.Cleanup(hts2.Close)
	c2 := New(hts2.URL, WithHTTPClient(hts2.Client()))
	if err := c2.Health(ctx); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Errorf("degraded health: %v", err)
	}
}

// TestContextCancellation checks both cancellation phases: a context
// canceled mid-request (the handler holds the response) and one
// canceled before the request is built.
func TestContextCancellation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(release); hts.Close() })
	c := New(hts.URL, WithHTTPClient(hts.Client()))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Evaluate(ctx, &api.EvaluateRequest{Scenario: config.Example()})
		done <- err
	}()
	<-started // the handler owns the request; cancel mid-flight
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Errorf("mid-request cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request never returned")
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := c.Devices(pre); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled request: %v", err)
	}
}
