// Package client is the typed Go client of the GreenFPGA evaluation
// service (`greenfpga serve`). Requests and responses are the
// canonical api types; non-2xx responses decode the service's error
// envelope and surface it as a *StatusError wrapping *api.Error.
//
//	c := client.New("http://127.0.0.1:8080")
//	resp, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "DNN"})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"greenfpga/api"
	"greenfpga/internal/telemetry"
)

// Client talks to one GreenFPGA service instance. It is safe for
// concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	// onRetry, when non-nil, observes every retry decision.
	onRetry func(RetryEvent)
	// sleep waits out a backoff delay; tests substitute it to run
	// retry schedules without real time passing.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// RetryPolicy bounds the client's automatic retries. Every request
// the service exposes is a pure function of its body, so replays are
// idempotent and safe; the policy only decides how hard to try.
//
// A retried attempt waits BaseDelay doubled per attempt, capped at
// MaxDelay, with uniform jitter in [delay/2, delay] so synchronized
// clients spread out. When the response carried a Retry-After header
// (the service's 503 sheds do), the wait is at least that long.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	MaxAttempts int
	// BaseDelay is the pre-jitter wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
}

// WithRetry turns on automatic retries for transient failures:
// transport errors, 5xx and 429 responses, and truncated or garbled
// 2xx bodies. Other 4xx responses are the server's verdict on the
// request and are never retried, and no retry is attempted once ctx
// is done. Zero fields take defaults (4 attempts, 100ms base, 2s
// cap).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		if p.MaxAttempts <= 0 {
			p.MaxAttempts = 4
		}
		if p.BaseDelay <= 0 {
			p.BaseDelay = 100 * time.Millisecond
		}
		if p.MaxDelay <= 0 {
			p.MaxDelay = 2 * time.Second
		}
		c.retry = p
	}
}

// RetryEvent describes one about-to-be-retried failure: which attempt
// just failed (1-based), why, the request ID the failing exchange
// carried (constant across a request's retries, so the server's access
// log lines for every attempt correlate), and how long the client will
// wait before the next attempt.
type RetryEvent struct {
	// Attempt is the failed attempt's number, starting at 1.
	Attempt int
	// RequestID is the X-Request-ID the attempt was sent with.
	RequestID string
	// Err is the failure that triggered the retry.
	Err error
	// Delay is the backoff wait before the next attempt.
	Delay time.Duration
}

// WithRetryLog registers a callback invoked before each retry sleep —
// the hook for surfacing "attempt 2/4 failed (id=...): 503, retrying
// in 800ms" in CLI and loadgen output. The callback runs on the
// requesting goroutine; keep it fast.
func WithRetryLog(fn func(RetryEvent)) Option {
	return func(c *Client) { c.onRetry = fn }
}

// defaultHTTPClient carries a keep-alive-tuned transport shared by
// every Client that does not bring its own. http.DefaultTransport
// caps idle connections at 2 per host, so any client driving more
// than 2 concurrent requests at one service (the loadgen ramp, a
// fan-out caller) would re-dial constantly and measure connection
// setup instead of the server. The service talks to one host, so the
// per-host idle pool is sized to the transport-wide one.
var defaultHTTPClient = func() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: t}
}()

// New builds a client for the service at baseURL (scheme and host,
// e.g. "http://127.0.0.1:8080"). Without WithRetry each request is
// attempted exactly once.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    defaultHTTPClient,
		sleep: sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// sleepCtx waits for d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// StatusError is a non-2xx response: the HTTP status plus the
// service's decoded error envelope.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Err is the decoded envelope; Code is "http_error" when the body
	// was not an envelope.
	Err *api.Error
	// RetryAfter is the parsed Retry-After header when the response
	// carried one (the service's 503 sheds do), zero otherwise.
	RetryAfter time.Duration
	// RequestID correlates the failure with the server's access log:
	// the response's echoed X-Request-ID, or the ID the request was
	// sent with when the response carried none.
	RequestID string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Err.Error())
}

// Unwrap exposes the envelope to errors.As.
func (e *StatusError) Unwrap() error { return e.Err }

// transientError marks a fault on an otherwise-successful exchange —
// a 2xx response whose body was cut short or garbled in transit — as
// eligible for retry.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// do runs one request under the retry policy; in (when non-nil) is
// sent as canonical JSON, out (when non-nil) receives the decoded
// response. The payload is built once so replays send identical
// bytes, and one request ID covers every attempt so the server's
// access log correlates a retry storm to its logical request. When
// the context ends during a backoff wait, the last attempt's error is
// returned (it explains why retries were running).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, in); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	id := telemetry.NewRequestID()
	attempts := c.retry.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, id, payload, in != nil, out)
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || ctx.Err() != nil || !retryable(err) {
			return err
		}
		delay := c.backoff(attempt, err)
		if c.onRetry != nil {
			c.onRetry(RetryEvent{Attempt: attempt + 1, RequestID: id, Err: err, Delay: delay})
		}
		if c.sleep(ctx, delay) != nil {
			return err
		}
	}
}

// once runs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, path, id string, payload []byte, isJSON bool, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-ID", id)
	if isJSON {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		e := &api.Error{}
		if json.Unmarshal(data, e) != nil || e.Code == "" {
			e = &api.Error{Code: "http_error", Message: strings.TrimSpace(string(data))}
		}
		echoed := resp.Header.Get("X-Request-ID")
		if echoed == "" {
			echoed = id
		}
		return &StatusError{Status: resp.StatusCode, Err: e,
			RetryAfter: retryAfterHeader(resp), RequestID: echoed}
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		err = json.Unmarshal(data, out)
	}
	if err != nil {
		// Drain whatever is left so the connection can be reused, and
		// mark the error transient: a cut-short or garbled 2xx body is
		// a transport fault, not the server's verdict on the request.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return &transientError{fmt.Errorf("client: decoding %s response: %w", path, err)}
	}
	return nil
}

// retryable reports whether err is worth another attempt: transport
// failures, 5xx and 429 statuses, and truncated 2xx bodies. Other
// 4xx statuses would fail identically on replay.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == http.StatusTooManyRequests || se.Status >= 500
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// backoff computes the wait before retry number attempt+1:
// exponential growth with jitter, floored at the server's Retry-After
// hint when the error carried one. The hint is still clamped to the
// policy's MaxDelay: Retry-After is advisory, and honoring an
// arbitrarily large value would let one bad response pin the caller
// far past the bound it configured (the sleep is context-aware, but a
// caller without a deadline would wait the whole hint out).
func (c *Client) backoff(attempt int, err error) time.Duration {
	d := c.retry.BaseDelay << attempt
	if d <= 0 || d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(rand.Int63n(half+1))
	}
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > d {
		d = se.RetryAfter
		if d > c.retry.MaxDelay {
			d = c.retry.MaxDelay
		}
	}
	return d
}

// retryAfterHeader parses a Retry-After header: delay-seconds or an
// HTTP date. Absent or malformed values report zero.
func retryAfterHeader(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("client: unhealthy: %q", h.Status)
	}
	return nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Status: resp.StatusCode,
			Err: &api.Error{Code: "http_error", Message: strings.TrimSpace(string(data))}}
	}
	return string(data), nil
}

// Version fetches the service build's identity.
func (c *Client) Version(ctx context.Context) (*api.VersionInfo, error) {
	out := &api.VersionInfo{}
	return out, c.do(ctx, http.MethodGet, "/v1/version", nil, out)
}

// Devices fetches the Table 3 catalog.
func (c *Client) Devices(ctx context.Context) (*api.DeviceList, error) {
	out := &api.DeviceList{}
	return out, c.do(ctx, http.MethodGet, "/v1/devices", nil, out)
}

// Domains fetches the Table 2 testcases.
func (c *Client) Domains(ctx context.Context) (*api.DomainList, error) {
	out := &api.DomainList{}
	return out, c.do(ctx, http.MethodGet, "/v1/domains", nil, out)
}

// Regions fetches the carbon-region registry: the scalar grid presets
// plus the traced hourly-signal regions.
func (c *Client) Regions(ctx context.Context) (*api.RegionList, error) {
	out := &api.RegionList{}
	return out, c.do(ctx, http.MethodGet, "/v1/regions", nil, out)
}

// Experiments lists the paper-artifact registry.
func (c *Client) Experiments(ctx context.Context) (*api.ExperimentList, error) {
	out := &api.ExperimentList{}
	return out, c.do(ctx, http.MethodGet, "/v1/experiments", nil, out)
}

// Experiment regenerates one paper artifact in JSON form.
func (c *Client) Experiment(ctx context.Context, id string) (*api.ExperimentResult, error) {
	out := &api.ExperimentResult{}
	return out, c.do(ctx, http.MethodGet, "/v1/experiments/"+url.PathEscape(id)+"?format=json", nil, out)
}

// Evaluate assesses one scenario.
func (c *Client) Evaluate(ctx context.Context, req *api.EvaluateRequest) (*api.EvaluateResponse, error) {
	out := &api.EvaluateResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/evaluate", req, out)
}

// EvaluateBatch assesses many scenarios in one round trip.
func (c *Client) EvaluateBatch(ctx context.Context, req *api.BatchEvaluateRequest) (*api.BatchEvaluateResponse, error) {
	out := &api.BatchEvaluateResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/evaluate/batch", req, out)
}

// Compare evaluates N platforms of a domain set on a shared uniform
// scenario: assessments, pairwise ratios, and the winner-per-N_app
// frontier.
func (c *Client) Compare(ctx context.Context, req api.CompareRequest) (*api.CompareResponse, error) {
	out := &api.CompareResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/compare", req, out)
}

// Timeline evaluates a time-phased deployment schedule on a domain
// set: per-platform totals with fleet, refresh and concurrency
// quantities, plus a sequential-accounting contrast.
func (c *Client) Timeline(ctx context.Context, req api.TimelineRequest) (*api.TimelineResponse, error) {
	out := &api.TimelineResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/timeline", req, out)
}

// Crossover solves the three §4.2 crossover questions for a domain.
func (c *Client) Crossover(ctx context.Context, req api.CrossoverRequest) (*api.CrossoverResponse, error) {
	out := &api.CrossoverResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/crossover", req, out)
}

// Sweep runs a 1-D domain sweep.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResponse, error) {
	out := &api.SweepResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/sweep", req, out)
}

// MonteCarlo runs the Table 1 uncertainty study for a domain.
func (c *Client) MonteCarlo(ctx context.Context, req api.MonteCarloRequest) (*api.MonteCarloResponse, error) {
	out := &api.MonteCarloResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/mc", req, out)
}

// Fleet runs a carbon-aware placement study: every platform sited in
// every candidate region, with the minimum-CFP placements and the
// per-region grid-aware crossovers.
func (c *Client) Fleet(ctx context.Context, req api.FleetRequest) (*api.FleetResponse, error) {
	out := &api.FleetResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/fleet", req, out)
}
