// Package client is the typed Go client of the GreenFPGA evaluation
// service (`greenfpga serve`). Requests and responses are the
// canonical api types; non-2xx responses decode the service's error
// envelope and surface it as a *StatusError wrapping *api.Error.
//
//	c := client.New("http://127.0.0.1:8080")
//	resp, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "DNN"})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"greenfpga/api"
)

// Client talks to one GreenFPGA service instance. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the service at baseURL (scheme and host,
// e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError is a non-2xx response: the HTTP status plus the
// service's decoded error envelope.
type StatusError struct {
	// Status is the HTTP status code.
	Status int
	// Err is the decoded envelope; Code is "http_error" when the body
	// was not an envelope.
	Err *api.Error
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Err.Error())
}

// Unwrap exposes the envelope to errors.As.
func (e *StatusError) Unwrap() error { return e.Err }

// do runs one request; in (when non-nil) is sent as canonical JSON,
// out (when non-nil) receives the decoded response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, in); err != nil {
			return err
		}
		body = &buf
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		e := &api.Error{}
		if json.Unmarshal(data, e) != nil || e.Code == "" {
			e = &api.Error{Code: "http_error", Message: strings.TrimSpace(string(data))}
		}
		return &StatusError{Status: resp.StatusCode, Err: e}
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("client: unhealthy: %q", h.Status)
	}
	return nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Status: resp.StatusCode,
			Err: &api.Error{Code: "http_error", Message: strings.TrimSpace(string(data))}}
	}
	return string(data), nil
}

// Devices fetches the Table 3 catalog.
func (c *Client) Devices(ctx context.Context) (*api.DeviceList, error) {
	out := &api.DeviceList{}
	return out, c.do(ctx, http.MethodGet, "/v1/devices", nil, out)
}

// Domains fetches the Table 2 testcases.
func (c *Client) Domains(ctx context.Context) (*api.DomainList, error) {
	out := &api.DomainList{}
	return out, c.do(ctx, http.MethodGet, "/v1/domains", nil, out)
}

// Experiments lists the paper-artifact registry.
func (c *Client) Experiments(ctx context.Context) (*api.ExperimentList, error) {
	out := &api.ExperimentList{}
	return out, c.do(ctx, http.MethodGet, "/v1/experiments", nil, out)
}

// Experiment regenerates one paper artifact in JSON form.
func (c *Client) Experiment(ctx context.Context, id string) (*api.ExperimentResult, error) {
	out := &api.ExperimentResult{}
	return out, c.do(ctx, http.MethodGet, "/v1/experiments/"+url.PathEscape(id)+"?format=json", nil, out)
}

// Evaluate assesses one scenario.
func (c *Client) Evaluate(ctx context.Context, req *api.EvaluateRequest) (*api.EvaluateResponse, error) {
	out := &api.EvaluateResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/evaluate", req, out)
}

// EvaluateBatch assesses many scenarios in one round trip.
func (c *Client) EvaluateBatch(ctx context.Context, req *api.BatchEvaluateRequest) (*api.BatchEvaluateResponse, error) {
	out := &api.BatchEvaluateResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/evaluate/batch", req, out)
}

// Compare evaluates N platforms of a domain set on a shared uniform
// scenario: assessments, pairwise ratios, and the winner-per-N_app
// frontier.
func (c *Client) Compare(ctx context.Context, req api.CompareRequest) (*api.CompareResponse, error) {
	out := &api.CompareResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/compare", req, out)
}

// Timeline evaluates a time-phased deployment schedule on a domain
// set: per-platform totals with fleet, refresh and concurrency
// quantities, plus a sequential-accounting contrast.
func (c *Client) Timeline(ctx context.Context, req api.TimelineRequest) (*api.TimelineResponse, error) {
	out := &api.TimelineResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/timeline", req, out)
}

// Crossover solves the three §4.2 crossover questions for a domain.
func (c *Client) Crossover(ctx context.Context, req api.CrossoverRequest) (*api.CrossoverResponse, error) {
	out := &api.CrossoverResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/crossover", req, out)
}

// Sweep runs a 1-D domain sweep.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResponse, error) {
	out := &api.SweepResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/sweep", req, out)
}

// MonteCarlo runs the Table 1 uncertainty study for a domain.
func (c *Client) MonteCarlo(ctx context.Context, req api.MonteCarloRequest) (*api.MonteCarloResponse, error) {
	out := &api.MonteCarloResponse{}
	return out, c.do(ctx, http.MethodPost, "/v1/mc", req, out)
}
