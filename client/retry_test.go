package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"greenfpga/api"
)

// retryClient builds a client against h with retries on and the
// backoff sleep replaced by a recorder, so schedules run instantly.
func retryClient(t *testing.T, h http.HandlerFunc, p RetryPolicy) (*Client, *[]time.Duration) {
	t.Helper()
	hts := httptest.NewServer(h)
	t.Cleanup(hts.Close)
	c := New(hts.URL, WithRetry(p))
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

// TestRetryConvergesAfterSheds checks that transient 503s are retried
// until a success, and that the Retry-After hint floors the waits.
func TestRetryConvergesAfterSheds(t *testing.T) {
	var calls atomic.Int64
	c, slept := retryClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"code":"overloaded","message":"shed"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}, RetryPolicy{MaxAttempts: 4})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after sheds: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		if d < 2*time.Second {
			t.Errorf("backoff %d = %v, want >= Retry-After of 2s", i, d)
		}
	}
}

// TestRetryGivesUpAtMaxAttempts checks the attempt budget is a hard
// cap and the final error is the server's envelope.
func TestRetryGivesUpAtMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	c, _ := retryClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"code":"internal","message":"boom"}`)
	}, RetryPolicy{MaxAttempts: 3})
	err := c.Health(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want StatusError 500", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

// TestRetryNeverRepeats4xx checks a client-error verdict is accepted
// on the first answer.
func TestRetryNeverRepeats4xx(t *testing.T) {
	var calls atomic.Int64
	c, slept := retryClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"code":"invalid_request","message":"no"}`)
	}, RetryPolicy{MaxAttempts: 5})
	_, err := c.Evaluate(context.Background(), &api.EvaluateRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("client backed off %d times on a 4xx", len(*slept))
	}
}

// TestRetryTruncatedBody checks a 2xx response cut short mid-body is
// treated as transient and replayed.
func TestRetryTruncatedBody(t *testing.T) {
	var calls atomic.Int64
	c, _ := retryClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Declare more bytes than are sent, then cut the stream.
			w.Header().Set("Content-Length", "64")
			fmt.Fprint(w, `{"status":`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}, RetryPolicy{MaxAttempts: 3})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after truncated body: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestRetryStopsOnContextCancel checks cancellation during the
// backoff wait ends the retry loop immediately, surfacing the last
// attempt's error.
func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	c, _ := retryClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"code":"overloaded","message":"shed"}`)
	}, RetryPolicy{MaxAttempts: 5})
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the context dies while the client is backing off
		return ctx.Err()
	}
	err := c.Health(ctx)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the last attempt's 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls after cancellation, want 1", got)
	}
}

// TestRetryBackoffGrows checks the exponential schedule: successive
// pre-jitter delays double and respect the cap.
func TestRetryBackoffGrows(t *testing.T) {
	c := New("http://unused", WithRetry(RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
	}))
	err := &StatusError{Status: 503, Err: &api.Error{Code: "overloaded"}}
	prev := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := c.backoff(attempt, err)
		base := c.retry.BaseDelay << attempt
		if base <= 0 || base > c.retry.MaxDelay {
			base = c.retry.MaxDelay
		}
		if d < base/2 || d > base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base)
		}
		if d > c.retry.MaxDelay {
			t.Errorf("attempt %d: backoff %v exceeds cap %v", attempt, d, c.retry.MaxDelay)
		}
		_ = prev
		prev = d
	}
	// A Retry-After above the computed delay floors the wait...
	err.RetryAfter = 500 * time.Millisecond
	if d := c.backoff(0, err); d != 500*time.Millisecond {
		t.Errorf("backoff with Retry-After 500ms = %v, want 500ms", d)
	}
	// ...but never past the policy's cap: a server hinting an hour must
	// not pin a client whose configured ceiling is one second.
	err.RetryAfter = time.Hour
	if d := c.backoff(0, err); d != c.retry.MaxDelay {
		t.Errorf("backoff with Retry-After 1h = %v, want the %v cap", d, c.retry.MaxDelay)
	}
}

// TestSleepCtxReturnsOnCancel checks the real backoff sleep (not the
// test recorder) unblocks as soon as the request context dies rather
// than waiting the delay out.
func TestSleepCtxReturnsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := sleepCtx(ctx, time.Hour); err == nil {
		t.Fatal("sleepCtx returned nil after cancel")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("sleepCtx waited %v past cancellation", waited)
	}
}
