package client

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"testing"
	"time"

	"greenfpga/api"
	"greenfpga/internal/server"
	"greenfpga/internal/store"
)

// jobClient is newPair over a server with a durable store, so the job
// endpoints are up.
func jobClient(t *testing.T) *Client {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return newPairOpts(t, server.Options{Store: st})
}

// TestJobRoundTrip drives submit → wait → result → cancel through the
// typed client and checks the job's decoded result equals the
// synchronous endpoint's for the same request.
func TestJobRoundTrip(t *testing.T) {
	c := jobClient(t)
	ctx := context.Background()
	req := api.MonteCarloRequest{Domain: "DNN", Samples: 6000, Seed: 11}

	st, err := c.SubmitJob(ctx, "mc", req)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.ID == "" || st.Endpoint != "/v1/mc" {
		t.Fatalf("submitted status: %+v", st)
	}
	fin, err := c.WaitJob(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if fin.State != "done" {
		t.Fatalf("final state %q (%+v)", fin.State, fin.Error)
	}

	var jobRes api.MonteCarloResponse
	if err := c.JobResult(ctx, st.ID, &jobRes); err != nil {
		t.Fatalf("JobResult: %v", err)
	}
	syncRes, err := c.MonteCarlo(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&jobRes, syncRes) {
		t.Fatalf("job result differs from sync response:\njob:  %+v\nsync: %+v", jobRes, syncRes)
	}

	if err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	if _, err := c.Job(ctx, st.ID); err == nil {
		t.Fatal("Job after cancel+delete succeeded")
	}

	// A fresh submission of the same request must list.
	if _, err := c.SubmitJob(ctx, "mc", req); err != nil {
		t.Fatal(err)
	}
	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) == 0 {
		t.Fatal("Jobs listed nothing")
	}
}

// TestJobSubmitErrors pins the error surface: bad endpoint and bad
// request fail at submission with the envelope decoded.
func TestJobSubmitErrors(t *testing.T) {
	c := jobClient(t)
	ctx := context.Background()
	if _, err := c.SubmitJob(ctx, "bogus", api.MonteCarloRequest{}); err == nil {
		t.Fatal("bogus endpoint accepted")
	}
	_, err := c.SubmitJob(ctx, "mc", api.MonteCarloRequest{Domain: "NoSuchDomain"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("bad domain: %v, want StatusError 400", err)
	}
}
