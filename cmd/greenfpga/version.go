package main

import (
	"flag"
	"fmt"
	"os"

	"greenfpga/api"
)

// cmdVersion prints the build's identity — module version, Go
// toolchain, VCS revision — from the linker-embedded build info, the
// same document the service answers on /v1/version.
func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical JSON document (matches GET /v1/version)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	v := api.BuildVersion()
	if *jsonOut {
		return api.WriteJSON(os.Stdout, v)
	}
	fmt.Printf("greenfpga %s (%s)\n", v.Version, v.GoVersion)
	if v.Revision != "" {
		dirty := ""
		if v.Dirty {
			dirty = " (dirty)"
		}
		fmt.Printf("  revision %s%s\n", v.Revision, dirty)
	}
	if v.CommitTime != "" {
		fmt.Printf("  committed %s\n", v.CommitTime)
	}
	return nil
}
