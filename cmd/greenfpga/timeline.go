package main

import (
	"flag"
	"fmt"
	"os"

	"greenfpga/api"
	"greenfpga/internal/report"
)

// cmdTimeline evaluates a time-phased deployment schedule on a domain
// set through the shared api compute path, so its `-json` output is
// byte-identical to the POST /v1/timeline response. The CLI exposes
// the staggered-arrival generator; explicit per-deployment timelines
// go through the service body.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	domain := fs.String("domain", "", "iso-performance domain set (DNN, ImgProc, Crypto; default DNN)")
	platforms := fs.String("platforms", "", "comma-separated platforms to compare: kinds (fpga,asic,gpu,cpu) or catalog device names (default: the domain's full set)")
	napps := fs.Int("napps", 0, "number of applications (default 5)")
	interval := fs.Float64("interval", 0, "arrival interval in years (default 0.5)")
	lifetime := fs.Float64("lifetime", 0, "application lifetime in years (default 2)")
	volume := fs.Float64("volume", 0, "application volume (default 1e6)")
	sizing := fs.String("sizing", "", "reusable-fleet sizing: shared, dedicated (default shared)")
	chipLifetime := fs.Float64("chip-lifetime", 0, "hardware-refresh period in wall-clock years (0 = never)")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/timeline)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	req := api.TimelineRequest{
		Domain: *domain, NApps: *napps, IntervalYears: *interval,
		LifetimeYears: *lifetime, Volume: *volume, Sizing: *sizing,
		ChipLifetimeYears: *chipLifetime,
	}
	specs, err := platformSpecArgs(*platforms)
	if err != nil {
		return err
	}
	req.Platforms = specs
	req = req.Normalized()
	resp, err := api.RunTimeline(req)
	if err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	const kgPerKt = 1e6
	t := report.NewTable(
		fmt.Sprintf("%s timeline: %d deployments over %gy (sequential span %gy), %s fleet sizing",
			resp.Domain, len(resp.Deployments), resp.SpanYears, resp.SequentialSpanYears, resp.Sizing),
		"Platform", "Kind", "Fleet", "Gens", "Timeline [kt]", "Sequential [kt]")
	for _, p := range resp.Platforms {
		t.AddRow(p.Platform, p.Kind,
			fmt.Sprintf("%.0f", p.FleetSize),
			fmt.Sprintf("%d", p.HardwareGenerations),
			fmt.Sprintf("%.2f", p.TotalKg/kgPerKt),
			fmt.Sprintf("%.2f", p.SequentialTotalKg/kgPerKt))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\npeak concurrency: %d resident deployment(s)\n", resp.PeakConcurrent)
	fmt.Printf("winner on this timeline: %s\n", resp.Winner)
	for _, r := range resp.Ratios {
		fmt.Printf("  %s : %s = %.3f\n", r.A, r.B, r.Ratio)
	}
	return nil
}
