package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"greenfpga/api"
	"greenfpga/client"
	"greenfpga/internal/telemetry"
)

// loadgen endpoints: each name maps to one fixed, representative
// request. The bodies are constant on purpose — after the first hit
// every repeat is a result-cache hit, so the ramp measures the serving
// floor (transport, decode, cache lookup, encode) rather than compute
// throughput; mixing in "mc" or "sweep" adds compute-bound traffic.
// With -unique, endpoints that can salt their bodies (a free-text
// name or seed) make every request a fresh content address instead,
// so the ramp tracks the cold miss path — decode, resolve, compute,
// encode — rather than the hit floor.
type lgEndpoint struct {
	name   string
	weight int
	call   func(ctx context.Context, c *client.Client) error
	// unique, when non-nil, issues the salted variant: request n must
	// produce a CanonicalKey no other request produces.
	unique func(ctx context.Context, c *client.Client, n uint64) error
}

// lgCall is one endpoint's fixed and salted request shapes.
type lgCall struct {
	call   func(ctx context.Context, c *client.Client) error
	unique func(ctx context.Context, c *client.Client, n uint64) error
}

// lgCalls builds the endpoint table against one client.
func lgCalls() map[string]lgCall {
	evalReq := &api.EvaluateRequest{
		Platforms: []api.PlatformSpec{{Domain: "DNN", Kind: "fpga"}, {Domain: "DNN", Kind: "asic"}},
		Workload:  &api.WorkloadSpec{NApps: 5, LifetimeYears: 2, Volume: 1e6},
	}
	return map[string]lgCall{
		"healthz": {call: func(ctx context.Context, c *client.Client) error {
			return c.Health(ctx)
		}},
		"devices": {call: func(ctx context.Context, c *client.Client) error {
			_, err := c.Devices(ctx)
			return err
		}},
		"evaluate": {
			call: func(ctx context.Context, c *client.Client) error {
				_, err := c.Evaluate(ctx, evalReq)
				return err
			},
			// The scenario name rides into the canonical key, so a
			// salted name is a guaranteed result-cache miss with
			// identical (O(1), compiled-cache-warm) compute — the
			// purest view of the cold decode/resolve/encode path.
			unique: func(ctx context.Context, c *client.Client, n uint64) error {
				req := *evalReq
				req.Name = "lg-unique-" + strconv.FormatUint(n, 10)
				_, err := c.Evaluate(ctx, &req)
				return err
			},
		},
		"compare": {call: func(ctx context.Context, c *client.Client) error {
			_, err := c.Compare(ctx, api.CompareRequest{Domain: "DNN"})
			return err
		}},
		"crossover": {call: func(ctx context.Context, c *client.Client) error {
			_, err := c.Crossover(ctx, api.CrossoverRequest{Domain: "DNN"})
			return err
		}},
		"sweep": {call: func(ctx context.Context, c *client.Client) error {
			_, err := c.Sweep(ctx, api.SweepRequest{Domain: "DNN", Axis: "napps"})
			return err
		}},
		"timeline": {call: func(ctx context.Context, c *client.Client) error {
			_, err := c.Timeline(ctx, api.TimelineRequest{Domain: "DNN"})
			return err
		}},
		"fleet": {call: func(ctx context.Context, c *client.Client) error {
			// The full-registry siting study: 12 regions x 2 platforms,
			// four of them trace-integrated, with the per-region A2F
			// solves — the compute-heaviest fixed body in the mix.
			_, err := c.Fleet(ctx, api.FleetRequest{Domain: "DNN"})
			return err
		}},
		"mc": {
			call: func(ctx context.Context, c *client.Client) error {
				_, err := c.MonteCarlo(ctx, api.MonteCarloRequest{Domain: "DNN", Samples: 500})
				return err
			},
			// A salted seed is a fresh content address whose compute is
			// real (500 draws) — the compute-bound miss profile.
			unique: func(ctx context.Context, c *client.Client, n uint64) error {
				_, err := c.MonteCarlo(ctx, api.MonteCarloRequest{
					Domain: "DNN", Samples: 500, Seed: int64(n + 1)})
				return err
			},
		},
	}
}

// parseEndpointMix parses "-endpoints": comma-separated name[:weight]
// entries (e.g. "evaluate:4,mc:1"). With unique set, every listed
// endpoint must support body salting.
func parseEndpointMix(s string, calls map[string]lgCall, unique bool) ([]lgEndpoint, error) {
	var out []lgEndpoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, ":")
		w := 1
		if hasW {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w < 1 {
				return nil, fmt.Errorf("entry %q: weight must be a positive integer", part)
			}
		}
		call, ok := calls[name]
		if !ok {
			known := make([]string, 0, len(calls))
			for k := range calls {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown endpoint %q (have: %s)", name, strings.Join(known, ", "))
		}
		if unique && call.unique == nil {
			return nil, fmt.Errorf("endpoint %q has no salt-able body; -unique supports: %s",
				name, strings.Join(uniqueNames(calls), ", "))
		}
		out = append(out, lgEndpoint{name: name, weight: w, call: call.call, unique: call.unique})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty endpoint mix")
	}
	return out, nil
}

// uniqueNames lists the endpoints supporting -unique, sorted.
func uniqueNames(calls map[string]lgCall) []string {
	var out []string
	for name, c := range calls {
		if c.unique != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// benchStep is one rung of the concurrency ramp in BENCH_serve.json.
type benchStep struct {
	Concurrency   int     `json:"concurrency"`
	DurationS     float64 `json:"duration_s"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	// Server-side /metrics deltas over the step, reconciling the
	// client's view against the service's own telemetry.
	Server benchServer `json:"server"`
}

// benchServer is the step's /metrics delta.
type benchServer struct {
	Requests  float64 `json:"requests"`
	CacheHits float64 `json:"cache_hits"`
	Coalesced float64 `json:"coalesced"`
	Shed      float64 `json:"shed"`
	Deadlines float64 `json:"deadlines"`
}

// benchDoc is one loadgen run. It carries no wall-clock timestamp so
// re-runs on identical builds diff cleanly.
type benchDoc struct {
	Base      string      `json:"base"`
	Endpoints []string    `json:"endpoints"`
	Unique    bool        `json:"unique,omitempty"`
	Steps     []benchStep `json:"steps"`
}

// cmdLoadgen drives a closed-loop stepped load ramp against a running
// service: begin → max workers in increments of step, each rung held
// for -duration, every worker issuing one request after another from
// the weighted endpoint mix. Client-side latency lands in a
// per-step histogram; server-side truth comes from /metrics deltas
// scraped around the rung. The trajectory is written as
// BENCH_serve.json — the serving-layer benchmark artifact.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	base := fs.String("base", "", "service base URL (required; e.g. http://127.0.0.1:8080)")
	endpoints := fs.String("endpoints", "evaluate",
		"weighted endpoint mix, comma-separated name[:weight] (healthz, devices, evaluate, compare, crossover, sweep, timeline, mc)")
	begin := fs.Int("begin", 1, "first rung's concurrent workers")
	step := fs.Int("step", 0, "workers added per rung (default: begin)")
	maxC := fs.Int("max", 8, "last rung's concurrent workers")
	duration := fs.Duration("duration", 3*time.Second, "time to hold each rung")
	unique := fs.Bool("unique", false,
		"salt every request body so each is a result-cache miss (cold-path ramp; endpoints must support salting)")
	label := fs.String("label", "",
		"store the run under runs.<label> in the output document, preserving other labels (default: overwrite with a single-run document)")
	out := fs.String("o", "BENCH_serve.json", "output path ('-' for stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *base == "" {
		return usagef("loadgen: -base is required (start one with 'greenfpga serve')")
	}
	if *begin < 1 || *maxC < *begin {
		return usagef("loadgen: need 1 <= -begin <= -max, got begin=%d max=%d", *begin, *maxC)
	}
	if *step <= 0 {
		*step = *begin
	}
	mix, err := parseEndpointMix(*endpoints, lgCalls(), *unique)
	if err != nil {
		return usagef("loadgen: bad -endpoints: %v", err)
	}

	c := client.New(*base)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("loadgen: service at %s not healthy: %w", *base, err)
	}
	// Prime each endpoint once so the ramp measures the steady state
	// (result cache warm) instead of mixing one cold evaluation into
	// the first rung's tail.
	for _, ep := range mix {
		if err := ep.call(ctx, c); err != nil {
			return fmt.Errorf("loadgen: priming %s: %w", ep.name, err)
		}
	}

	doc := benchDoc{Base: *base, Unique: *unique}
	for _, ep := range mix {
		doc.Endpoints = append(doc.Endpoints, fmt.Sprintf("%s:%d", ep.name, ep.weight))
	}
	var salt atomic.Uint64
	fmt.Printf("%-12s %10s %12s %10s %10s %10s\n",
		"concurrency", "requests", "rps", "p50_ms", "p99_ms", "max_ms")
	for n := *begin; n <= *maxC; n += *step {
		st, err := runStep(ctx, c, mix, n, *duration, uniqueSalt(*unique, &salt))
		if err != nil {
			return err
		}
		doc.Steps = append(doc.Steps, st)
		fmt.Printf("%-12d %10d %12.1f %10.3f %10.3f %10.3f\n",
			n, st.Requests, st.ThroughputRPS, st.P50Ms, st.P99Ms, st.MaxMs)
	}

	buf, err := renderBench(doc, *label, *out)
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := writeFileAtomic(*out, buf); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d steps)\n", *out, len(doc.Steps))
	return nil
}

// uniqueSalt returns the per-request salt source, or nil for the
// fixed-body (cache-hit) ramp. The counter spans all rungs so a later
// rung can never replay an earlier rung's key.
func uniqueSalt(unique bool, salt *atomic.Uint64) func() uint64 {
	if !unique {
		return nil
	}
	return func() uint64 { return salt.Add(1) }
}

// renderBench marshals the output document: a plain single-run doc,
// or — under -label — the labeled-runs form {"runs": {label: doc}},
// merging with any labeled runs already in the output file so
// successive PRs' trajectories accumulate side by side.
func renderBench(doc benchDoc, label, path string) ([]byte, error) {
	var v any = doc
	if label != "" {
		runs := make(map[string]json.RawMessage)
		if path != "-" {
			if prev, err := os.ReadFile(path); err == nil {
				var existing struct {
					Runs map[string]json.RawMessage `json:"runs"`
				}
				if json.Unmarshal(prev, &existing) == nil && existing.Runs != nil {
					runs = existing.Runs
				}
			}
		}
		raw, err := json.Marshal(doc)
		if err != nil {
			return nil, err
		}
		runs[label] = raw
		v = struct {
			Runs map[string]json.RawMessage `json:"runs"`
		}{runs}
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// writeFileAtomic replaces path via a temp file in the same directory
// plus rename. The -label path reads the previous document back and
// merges labeled runs into it, so an in-place truncate-and-write that
// dies (or races a reader) mid-write would destroy every earlier run;
// the rename publishes the merged document all-or-nothing.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		// CreateTemp's 0600 would make the artifact owner-only.
		werr = os.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
	}
	return werr
}

// runStep holds one rung: n workers in a closed loop for d, latencies
// into a shared atomic histogram, /metrics scraped before and after.
// A non-nil salt switches every call to its salted variant, each
// request a fresh content address (the -unique cold-path ramp).
func runStep(ctx context.Context, c *client.Client, mix []lgEndpoint, n int, d time.Duration, salt func() uint64) (benchStep, error) {
	before, err := scrape(ctx, c)
	if err != nil {
		return benchStep{}, fmt.Errorf("loadgen: scraping /metrics: %w", err)
	}
	// Finer buckets than the server's (5/decade): quantiles here are
	// the artifact's headline numbers.
	hist := telemetry.NewHistogram(telemetry.LogBuckets(1e-6, 10, 5))
	var requests, errs atomic.Uint64
	stepCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var wg sync.WaitGroup
	totalWeight := 0
	for _, ep := range mix {
		totalWeight += ep.weight
	}
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic weighted rotation, offset per worker so
			// workers do not move in lockstep through the mix.
			at := w
			for {
				if stepCtx.Err() != nil {
					return
				}
				pick := at % totalWeight
				at++
				var chosen lgEndpoint
				for _, ep := range mix {
					if pick < ep.weight {
						chosen = ep
						break
					}
					pick -= ep.weight
				}
				t0 := time.Now()
				var err error
				if salt != nil {
					err = chosen.unique(stepCtx, c, salt())
				} else {
					err = chosen.call(stepCtx, c)
				}
				if stepCtx.Err() != nil && err != nil {
					// The rung ended mid-request; a cut-off request is
					// neither a sample nor an error.
					return
				}
				hist.Observe(time.Since(t0).Seconds())
				requests.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	after, err := scrape(ctx, c)
	if err != nil {
		return benchStep{}, fmt.Errorf("loadgen: scraping /metrics: %w", err)
	}
	snap := hist.Snapshot()
	st := benchStep{
		Concurrency: n,
		DurationS:   round3(elapsed.Seconds()),
		Requests:    requests.Load(),
		Errors:      errs.Load(),
		P50Ms:       round3(snap.Quantile(0.5) * 1e3),
		P90Ms:       round3(snap.Quantile(0.9) * 1e3),
		P99Ms:       round3(snap.Quantile(0.99) * 1e3),
		MaxMs:       round3(snap.Max * 1e3),
		Server: benchServer{
			Requests:  delta(before, after, "greenfpga_requests_total"),
			CacheHits: delta(before, after, "greenfpga_result_cache_hits_total"),
			Coalesced: delta(before, after, "greenfpga_coalesced_total"),
			Shed:      delta(before, after, "greenfpga_shed_total"),
			Deadlines: delta(before, after, "greenfpga_deadline_exceeded_total"),
		},
	}
	if elapsed > 0 {
		st.ThroughputRPS = round3(float64(requests.Load()) / elapsed.Seconds())
	}
	return st, nil
}

// scrape fetches and strictly parses the service's /metrics page.
func scrape(ctx context.Context, c *client.Client) (*telemetry.Scrape, error) {
	text, err := c.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	return telemetry.ParseExposition(text)
}

// delta is the step-over-step difference of one summed metric.
func delta(before, after *telemetry.Scrape, name string) float64 {
	return after.Total(name) - before.Total(name)
}

// round3 keeps the artifact readable: 3 decimals everywhere.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
