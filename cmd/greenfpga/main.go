// Command greenfpga is the GreenFPGA carbon-footprint tool: it
// evaluates FPGA- and ASIC-based computing scenarios, regenerates every
// table and figure of the DAC'24 paper, sweeps parameters, solves
// crossover points, runs uncertainty studies, and serves it all over
// HTTP.
//
// Usage:
//
//	greenfpga list                          list paper experiments
//	greenfpga experiment <id>|all           regenerate a table/figure
//	greenfpga devices                       print the Table 3 catalog
//	greenfpga domains                       print the Table 2 testcases
//	greenfpga crossover -domain DNN         solve A2F/F2A points
//	greenfpga sweep -domain DNN -axis napps 1-D sweep with a chart
//	greenfpga run -config file.json         evaluate a JSON scenario
//	greenfpga mc -domain DNN                Monte-Carlo uncertainty
//	greenfpga serve -addr 127.0.0.1:8080    HTTP evaluation service
//	greenfpga example-config                print a sample JSON config
//	greenfpga help                          print this usage
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// commands dispatches subcommand names to implementations.
var commands = map[string]func(args []string) error{
	"list":           cmdList,
	"experiment":     cmdExperiment,
	"devices":        cmdDevices,
	"domains":        cmdDomains,
	"kernels":        cmdKernels,
	"compare":        cmdCompare,
	"crossover":      cmdCrossover,
	"sweep":          cmdSweep,
	"run":            cmdRun,
	"plan":           cmdPlan,
	"dse":            cmdDSE,
	"mc":             cmdMC,
	"wafer":          cmdWafer,
	"serve":          cmdServe,
	"validate":       cmdValidate,
	"example-config": cmdExampleConfig,
	"help":           cmdHelp,
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	// Flag spellings of the help command succeed like the command.
	if name == "-h" || name == "--help" {
		name = "help"
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "greenfpga: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := cmd(os.Args[2:]); err != nil {
		// `greenfpga <cmd> -h` is a help request, not a failure: the
		// flag set already printed its usage.
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "greenfpga: %v\n", err)
		os.Exit(1)
	}
}

// cmdHelp prints the top-level usage to stdout and succeeds — the
// `greenfpga help`, `-h` and `--help` spellings all land here.
func cmdHelp(args []string) error {
	usage(os.Stdout)
	return nil
}

// usage prints the top-level help.
func usage(w io.Writer) {
	fmt.Fprintln(w, `GreenFPGA: carbon-footprint assessment of FPGA vs ASIC computing (DAC'24)

commands:
  list [-json]                    list the paper-reproduction experiments
  experiment <id>|all             regenerate a paper table/figure
  devices [-json]                 print the industry device catalog (Table 3)
  domains [-json]                 print the iso-performance testcases (Table 2)
  kernels                         list the workload kernel library
  compare [-domain <name>]        N-platform domain-set comparison (FPGA, ASIC,
                                  GPU, CPU); -fpga/-asic selects the catalog
                                  head-to-head instead
  crossover -domain <name>        solve the A2F/F2A crossover points
  sweep -domain <name> -axis <a>  run a 1-D sweep (axes: napps, lifetime, volume)
  run -config <file.json>         evaluate a custom scenario
  plan -config <file.json>        optimize a portfolio across FPGA fleet and ASICs
  dse -kernel <name>              carbon-aware design-space exploration
  mc -domain <name>               Monte-Carlo uncertainty over Table 1 ranges
  wafer [-device <name>]          wafer-level manufacturing economics
  serve [-addr host:port]         HTTP evaluation service (/v1/..., /healthz, /metrics)
  validate -config <file.json>    check a scenario JSON
  example-config                  print a sample scenario JSON
  help                            print this usage (also -h, --help)

The -json flags emit the canonical api documents, byte-identical to
the corresponding 'greenfpga serve' endpoints.`)
}
