// Command greenfpga is the GreenFPGA carbon-footprint tool: it
// evaluates FPGA- and ASIC-based computing scenarios, regenerates every
// table and figure of the DAC'24 paper, sweeps parameters, solves
// crossover points, runs uncertainty studies, and serves it all over
// HTTP.
//
// Usage:
//
//	greenfpga list                          list paper experiments
//	greenfpga experiment <id>|all           regenerate a table/figure
//	greenfpga devices                       print the Table 3 catalog
//	greenfpga domains                       print the Table 2 testcases
//	greenfpga regions                       print the carbon-region registry
//	greenfpga crossover -domain DNN         solve A2F/F2A points
//	greenfpga fleet -domain DNN             carbon-aware placement study
//	greenfpga sweep -domain DNN -axis napps 1-D sweep with a chart
//	greenfpga timeline -domain DNN          time-phased deployment schedule
//	greenfpga run -config file.json         evaluate a JSON scenario
//	greenfpga mc -domain DNN                Monte-Carlo uncertainty
//	greenfpga serve -addr 127.0.0.1:8080    HTTP evaluation service
//	greenfpga job submit -base <url> ...    durable async studies on a -store service
//	greenfpga example-config                print a sample JSON config
//	greenfpga help                          print this usage
//
// Exit codes: 0 on success (including every help spelling), 1 on
// runtime failures, 2 on usage mistakes (unknown commands, bad flags,
// missing required arguments).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// commands dispatches subcommand names to implementations.
var commands = map[string]func(args []string) error{
	"list":           cmdList,
	"experiment":     cmdExperiment,
	"devices":        cmdDevices,
	"domains":        cmdDomains,
	"regions":        cmdRegions,
	"kernels":        cmdKernels,
	"fleet":          cmdFleet,
	"compare":        cmdCompare,
	"crossover":      cmdCrossover,
	"sweep":          cmdSweep,
	"timeline":       cmdTimeline,
	"run":            cmdRun,
	"plan":           cmdPlan,
	"dse":            cmdDSE,
	"mc":             cmdMC,
	"wafer":          cmdWafer,
	"serve":          cmdServe,
	"job":            cmdJob,
	"loadgen":        cmdLoadgen,
	"version":        cmdVersion,
	"validate":       cmdValidate,
	"example-config": cmdExampleConfig,
	"help":           cmdHelp,
}

// usageError marks a command-line usage mistake — an unknown flag, a
// missing required argument — as opposed to a runtime failure: run
// prints it to stderr (unless the flag package already did) and exits
// 2, the conventional usage-error status.
type usageError struct {
	err error
	// printed records that the flag set already wrote the message (and
	// its usage text) to stderr, so run must not repeat it.
	printed bool
}

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// usagef builds a usage error that run still needs to print.
func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// parseFlags parses a subcommand's flags, classifying parse failures
// as usage errors. flag.ErrHelp passes through so `greenfpga <cmd> -h`
// keeps exiting 0; ContinueOnError flag sets print their own message
// and usage to stderr, so the error is marked already-printed.
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageError{err: err, printed: true}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches one command line and returns the process exit code.
func run(args []string) int {
	if len(args) < 1 {
		usage(os.Stderr)
		return 2
	}
	name := args[0]
	// Flag spellings of the help command succeed like the command.
	if name == "-h" || name == "--help" {
		name = "help"
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "greenfpga: unknown command %q\n\n", args[0])
		usage(os.Stderr)
		return 2
	}
	err := cmd(args[1:])
	if err == nil {
		return 0
	}
	// `greenfpga <cmd> -h` is a help request, not a failure: the flag
	// set already printed its usage.
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.printed {
			fmt.Fprintf(os.Stderr, "greenfpga: %v\n", err)
		}
		return 2
	}
	fmt.Fprintf(os.Stderr, "greenfpga: %v\n", err)
	return 1
}

// cmdHelp prints the top-level usage to stdout and succeeds — the
// `greenfpga help`, `-h` and `--help` spellings all land here.
func cmdHelp(args []string) error {
	usage(os.Stdout)
	return nil
}

// usage prints the top-level help.
func usage(w io.Writer) {
	fmt.Fprintln(w, `GreenFPGA: carbon-footprint assessment of FPGA vs ASIC computing (DAC'24)

commands:
  list [-json]                    list the paper-reproduction experiments
  experiment <id>|all             regenerate a paper table/figure
  devices [-json]                 print the industry device catalog (Table 3)
  domains [-json]                 print the iso-performance testcases (Table 2)
  regions [-json]                 print the carbon-region registry (scalar grid
                                  presets plus hourly-trace regions)
  kernels                         list the workload kernel library
  compare [-domain <name>]        N-platform comparison; -platforms mixes kinds
                                  and catalog devices, -fpga/-asic selects the
                                  catalog head-to-head instead
  crossover -domain <name>        solve the A2F/F2A crossover points
  fleet [-domain <name>]          carbon-aware placement study: platforms x
                                  regions siting matrix; -shift daily packs
                                  run-hours into each traced region's
                                  cleanest hours
  sweep -domain <name> -axis <a>  run a 1-D sweep (axes: napps, lifetime, volume);
                                  -platforms sweeps any kind/device set
  timeline [-domain <name>]       evaluate a time-phased deployment schedule
                                  (staggered arrivals, refresh policy, fleet sizing)
  run -config <file.json>         evaluate a custom scenario
  plan -config <file.json>        optimize a portfolio across FPGA fleet and ASICs
  dse -kernel <name>              carbon-aware design-space exploration
  mc -domain <name>               Monte-Carlo uncertainty over Table 1 ranges;
                                  -platforms picks the studied kind pair
  wafer [-device <name>]          wafer-level manufacturing economics
  serve [-addr host:port]         HTTP evaluation service (/v1/..., /healthz, /metrics);
                                  -access-log writes JSON access records,
                                  -pprof serves the profiler on a loopback port,
                                  -store <dir> persists results and enables /v1/jobs
  job <sub> -base <url>           async jobs on a -store service: submit, list,
                                  status, result, cancel ('job help' for details)
  loadgen -base <url>             closed-loop stepped load ramp against a running
                                  service; writes the BENCH_serve.json trajectory
  version                         print the build's version and VCS revision
  validate -config <file.json>    check a scenario JSON
  example-config                  print a sample scenario JSON
  help                            print this usage (also -h, --help)

The -json flags emit the canonical api documents, byte-identical to
the corresponding 'greenfpga serve' endpoints.`)
}
