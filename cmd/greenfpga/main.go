// Command greenfpga is the GreenFPGA carbon-footprint tool: it
// evaluates FPGA- and ASIC-based computing scenarios, regenerates every
// table and figure of the DAC'24 paper, sweeps parameters, solves
// crossover points, and runs uncertainty studies.
//
// Usage:
//
//	greenfpga list                          list paper experiments
//	greenfpga experiment <id>|all           regenerate a table/figure
//	greenfpga devices                       print the Table 3 catalog
//	greenfpga domains                       print the Table 2 testcases
//	greenfpga crossover -domain DNN         solve A2F/F2A points
//	greenfpga sweep -domain DNN -axis napps 1-D sweep with a chart
//	greenfpga run -config file.json         evaluate a JSON scenario
//	greenfpga mc -domain DNN                Monte-Carlo uncertainty
//	greenfpga example-config                print a sample JSON config
package main

import (
	"fmt"
	"os"
)

// commands dispatches subcommand names to implementations.
var commands = map[string]func(args []string) error{
	"list":           cmdList,
	"experiment":     cmdExperiment,
	"devices":        cmdDevices,
	"domains":        cmdDomains,
	"kernels":        cmdKernels,
	"compare":        cmdCompare,
	"crossover":      cmdCrossover,
	"sweep":          cmdSweep,
	"run":            cmdRun,
	"plan":           cmdPlan,
	"dse":            cmdDSE,
	"mc":             cmdMC,
	"wafer":          cmdWafer,
	"validate":       cmdValidate,
	"example-config": cmdExampleConfig,
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, ok := commands[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "greenfpga: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err := cmd(os.Args[2:]); err != nil {
		fmt.Fprintf(os.Stderr, "greenfpga: %v\n", err)
		os.Exit(1)
	}
}

// usage prints the top-level help.
func usage() {
	fmt.Fprintln(os.Stderr, `GreenFPGA: carbon-footprint assessment of FPGA vs ASIC computing (DAC'24)

commands:
  list                            list the paper-reproduction experiments
  experiment <id>|all             regenerate a paper table/figure
  devices                         print the industry device catalog (Table 3)
  domains                         print the iso-performance testcases (Table 2)
  kernels                         list the workload kernel library
  compare -fpga <dev> -asic <dev> head-to-head catalog comparison
  crossover -domain <name>        solve the A2F/F2A crossover points
  sweep -domain <name> -axis <a>  run a 1-D sweep (axes: napps, lifetime, volume)
  run -config <file.json>         evaluate a custom scenario
  plan -config <file.json>        optimize a portfolio across FPGA fleet and ASICs
  dse -kernel <name>              carbon-aware design-space exploration
  mc -domain <name>               Monte-Carlo uncertainty over Table 1 ranges
  wafer [-device <name>]          wafer-level manufacturing economics
  validate -config <file.json>    check a scenario JSON
  example-config                  print a sample scenario JSON`)
}
