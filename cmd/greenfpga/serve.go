package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"greenfpga/internal/server"
	"greenfpga/internal/store"
)

// cmdServe runs the HTTP evaluation service until SIGINT/SIGTERM,
// then drains in-flight requests and exits cleanly.
//
// Endpoints (see DESIGN.md "Service architecture"):
//
//	GET  /healthz                liveness
//	GET  /metrics                Prometheus counters (cache hits, ...)
//	GET  /v1/devices             Table 3 catalog
//	GET  /v1/domains             Table 2 testcases
//	GET  /v1/regions             carbon-region registry (scalar + traced)
//	GET  /v1/experiments         paper-artifact registry
//	GET  /v1/experiments/{id}    one artifact (?format=json|text|markdown|csv)
//	POST /v1/evaluate            evaluate a {"scenario": ...} document
//	POST /v1/evaluate/batch      evaluate many scenarios in one call
//	POST /v1/compare             N-platform domain-set comparison
//	POST /v1/timeline            time-phased deployment schedule
//	POST /v1/crossover           solve the A2F/F2A crossover points
//	POST /v1/sweep               run a 1-D domain sweep
//	POST /v1/mc                  Monte-Carlo uncertainty study
//	POST /v1/fleet               carbon-aware placement study
//
// With -store, results persist across restarts and the asynchronous
// job endpoints come up (see DESIGN.md "Jobs and durability"):
//
//	POST   /v1/jobs              submit a compute request as a job (202)
//	GET    /v1/jobs              list jobs, newest first
//	GET    /v1/jobs/{id}         poll one job's state and progress
//	GET    /v1/jobs/{id}/result  fetch a done job's result
//	                             (?format=ndjson streams sweep points)
//	DELETE /v1/jobs/{id}         cancel and remove a job
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	maxConcurrent := fs.Int("max-concurrent", 64, "compute requests evaluated at once")
	cacheEntries := fs.Int("cache", 1024, "content-addressed result cache entries")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	timeout := fs.Duration("timeout", 30*time.Second,
		"per-request compute deadline: overruns answer 504 deadline_exceeded (0 disables)")
	endpointTimeouts := fs.String("endpoint-timeouts", "",
		"per-endpoint deadline overrides, comma-separated path=duration (e.g. /v1/mc=2m,/v1/sweep=1m)")
	maxQueueWait := fs.Duration("max-queue-wait", 2*time.Second,
		"longest a request may queue for an evaluation slot before being shed with 503 + Retry-After (0 sheds immediately when saturated)")
	accessLog := fs.String("access-log", "",
		"write one-line JSON access records to this file ('-' for stderr); the first line identifies the build")
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof on this address (loopback only, e.g. 127.0.0.1:6060; port 0 picks one)")
	storeDir := fs.String("store", "",
		"durable store directory: results persist across restarts and /v1/jobs accepts resumable async studies")
	jobWorkers := fs.Int("job-workers", 1, "jobs run concurrently (with -store)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	overrides, err := parseEndpointTimeouts(*endpointTimeouts)
	if err != nil {
		return usagef("bad -endpoint-timeouts: %v", err)
	}
	reqTimeout := *timeout
	if reqTimeout == 0 {
		reqTimeout = -1 // Options: 0 means default, negative disables.
	}
	queueWait := *maxQueueWait
	if queueWait == 0 {
		// Options treat 0 as "default": an explicit 0 means shed as
		// soon as the limiter is saturated.
		queueWait = time.Nanosecond
	}
	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open -access-log: %w", err)
		}
		defer f.Close()
		accessW = f
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("open -store: %w", err)
		}
		// Closed after Shutdown: the jobs manager checkpoints in-flight
		// studies into it while draining.
		defer st.Close()
	}
	srv, err := server.New(server.Options{
		Addr:             *addr,
		MaxConcurrent:    *maxConcurrent,
		CacheEntries:     *cacheEntries,
		RequestTimeout:   reqTimeout,
		EndpointTimeouts: overrides,
		MaxQueueWait:     queueWait,
		AccessLog:        accessW,
		PprofAddr:        *pprofAddr,
		Store:            st,
		JobWorkers:       *jobWorkers,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start()
	if err != nil {
		return err
	}
	// The first output line carries the bound address so scripts (and
	// the CI smoke job) can discover an ephemeral port.
	fmt.Printf("listening on http://%s\n", bound)
	if pa := srv.PprofAddr(); pa != "" {
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pa)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case got := <-sig:
		fmt.Printf("received %s, draining\n", got)
	case err := <-srv.Done():
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-srv.Done(); err != nil {
		return err
	}
	fmt.Println("shutdown complete")
	return nil
}

// parseEndpointTimeouts parses the -endpoint-timeouts value: a
// comma-separated list of path=duration overrides.
func parseEndpointTimeouts(s string) (map[string]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]time.Duration)
	for _, part := range strings.Split(s, ",") {
		path, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || path == "" {
			return nil, fmt.Errorf("entry %q is not path=duration", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %v", part, err)
		}
		out[path] = d
	}
	return out, nil
}
