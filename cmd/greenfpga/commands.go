package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"greenfpga"

	"greenfpga/internal/core"
	"greenfpga/internal/experiments"
	"greenfpga/internal/isoperf"
	"greenfpga/internal/report"
	"greenfpga/internal/sweep"
	"greenfpga/internal/units"
)

// cmdList prints the experiment registry.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, id := range greenfpga.Experiments() {
		fmt.Println(id)
	}
	return nil
}

// cmdExperiment regenerates one or all paper artifacts.
func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, markdown, csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: greenfpga experiment [-format text|markdown|csv] <id>|all")
	}
	render := func(o *experiments.Output) error {
		switch *format {
		case "text":
			return o.Render(os.Stdout)
		case "markdown", "md":
			return o.RenderMarkdown(os.Stdout)
		case "csv":
			return o.RenderCSV(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q (text, markdown, csv)", *format)
		}
	}
	id := fs.Arg(0)
	if id == "all" {
		outs, err := experiments.RunAll()
		if err != nil {
			return err
		}
		for _, o := range outs {
			if err := render(o); err != nil {
				return err
			}
		}
		return nil
	}
	out, err := experiments.Run(id)
	if err != nil {
		return err
	}
	return render(out)
}

// cmdDevices prints the Table 3 catalog.
func cmdDevices(args []string) error {
	fs := flag.NewFlagSet("devices", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.NewTable("Industry device catalog (Table 3)",
		"Name", "Kind", "Node", "Die area", "TDP", "Capacity [Mgates]", "Based on")
	for _, s := range greenfpga.IndustryDevices() {
		cap := "-"
		if s.CapacityGates > 0 {
			cap = fmt.Sprintf("%.0f", s.CapacityGates/1e6)
		}
		t.AddRow(s.Name, string(s.Kind), s.Node.Name, s.DieArea.String(),
			s.PeakPower.String(), cap, s.BasedOn)
	}
	return t.WriteText(os.Stdout)
}

// cmdDomains prints the Table 2 testcases.
func cmdDomains(args []string) error {
	fs := flag.NewFlagSet("domains", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.NewTable("Iso-performance domains (Table 2)",
		"Domain", "Area ratio", "Power ratio", "ASIC area", "ASIC TDP", "Duty")
	for _, d := range greenfpga.Domains() {
		t.AddRow(d.Name, fmt.Sprintf("%g", d.AreaRatio), fmt.Sprintf("%g", d.PowerRatio),
			d.ASICArea.String(), d.ASICPeakPower.String(), fmt.Sprintf("%.0f%%", d.DutyCycle*100))
	}
	return t.WriteText(os.Stdout)
}

// pairFlag resolves the -domain flag to an iso-performance pair.
func pairFlag(name string) (core.Pair, error) {
	d, err := greenfpga.DomainByName(name)
	if err != nil {
		return core.Pair{}, err
	}
	return d.Pair()
}

// cmdCrossover solves the three §4.2 crossover questions.
func cmdCrossover(args []string) error {
	fs := flag.NewFlagSet("crossover", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain (DNN, ImgProc, Crypto)")
	lifetime := fs.Float64("lifetime", 2, "application lifetime in years (for N_app and N_vol solves)")
	napps := fs.Int("napps", 5, "application count (for T_i and N_vol solves)")
	volume := fs.Float64("volume", 1e6, "application volume (for N_app and T_i solves)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr, err := pairFlag(*domain)
	if err != nil {
		return err
	}
	cp, err := greenfpga.CompilePair(pr)
	if err != nil {
		return err
	}
	n, nFound, err := cp.CrossoverNumApps(units.YearsOf(*lifetime), *volume, 0, 30)
	if err != nil {
		return err
	}
	tstar, tFound, err := cp.CrossoverLifetime(*napps, *volume, 0, units.YearsOf(0.05), units.YearsOf(10))
	if err != nil {
		return err
	}
	vstar, vFound, err := cp.CrossoverVolume(*napps, units.YearsOf(*lifetime), 0, 1e2, 1e8)
	if err != nil {
		return err
	}
	fmt.Printf("domain %s (T=%gy, N=%d, V=%g where fixed)\n", *domain, *lifetime, *napps, *volume)
	if nFound {
		fmt.Printf("  A2F at N_app = %d (FPGA wins from %d applications)\n", n, n)
	} else {
		fmt.Println("  no N_app crossover within 30 applications")
	}
	if tFound {
		fmt.Printf("  F2A at T_i = %.2f years (FPGA wins below)\n", tstar.Years())
	} else {
		fmt.Println("  no lifetime crossover in [0.05, 10] years")
	}
	if vFound {
		fmt.Printf("  F2A at N_vol = %.0f units (FPGA wins below)\n", vstar)
	} else {
		fmt.Println("  no volume crossover in [1e2, 1e8]")
	}
	return nil
}

// cmdSweep runs a 1-D sweep and charts it.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain")
	axis := fs.String("axis", "napps", "sweep axis: napps, lifetime, volume")
	from := fs.Float64("from", 0, "axis start (defaults per axis)")
	to := fs.Float64("to", 0, "axis end (defaults per axis)")
	points := fs.Int("points", 0, "sample count (defaults per axis)")
	csvOut := fs.Bool("csv", false, "emit CSV instead of a chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr, err := pairFlag(*domain)
	if err != nil {
		return err
	}

	var ax sweep.Axis
	var evalAxis string
	logX := false
	switch *axis {
	case "napps":
		lo, hi := 1, 12
		if *from > 0 {
			lo = int(*from)
		}
		if *to > 0 {
			hi = int(*to)
		}
		ax = sweep.Axis{Name: "Num Apps", Values: sweep.IntRange(lo, hi)}
		evalAxis = "n"
	case "lifetime":
		lo, hi, n := 0.2, 2.5, 24
		if *from > 0 {
			lo = *from
		}
		if *to > 0 {
			hi = *to
		}
		if *points > 0 {
			n = *points
		}
		ax = sweep.Axis{Name: "App Lifetime [y]", Values: sweep.Linspace(lo, hi, n)}
		evalAxis = "t"
	case "volume":
		lo, hi, n := 1e3, 1e6, 13
		if *from > 0 {
			lo = *from
		}
		if *to > 0 {
			hi = *to
		}
		if *points > 0 {
			n = *points
		}
		ax = sweep.Axis{Name: "App Volume", Values: sweep.Logspace(lo, hi, n), Log: true}
		evalAxis = "v"
		logX = true
	default:
		return fmt.Errorf("unknown axis %q (napps, lifetime, volume)", *axis)
	}

	cp, err := greenfpga.CompilePair(pr)
	if err != nil {
		return err
	}
	eval := func(x float64) (units.Mass, units.Mass, error) {
		nApps, tY, v := 5, 2.0, 1e6
		switch evalAxis {
		case "n":
			nApps = int(x + 0.5)
		case "t":
			tY = x
		case "v":
			v = x
		}
		c, err := cp.CompareUniform(nApps, units.YearsOf(tY), v, 0)
		if err != nil {
			return 0, 0, err
		}
		return c.FPGA.Total(), c.ASIC.Total(), nil
	}
	pts, err := sweep.Run1D(ax, eval)
	if err != nil {
		return err
	}

	if *csvOut {
		t := report.NewTable("", ax.Name, "FPGA [kt]", "ASIC [kt]", "ratio")
		for _, p := range pts {
			t.AddRow(fmt.Sprintf("%g", p.X), fmt.Sprintf("%.3f", p.FPGA.Kilotonnes()),
				fmt.Sprintf("%.3f", p.ASIC.Kilotonnes()), fmt.Sprintf("%.4f", p.Ratio))
		}
		return t.WriteCSV(os.Stdout)
	}
	xs := make([]float64, len(pts))
	fy := make([]float64, len(pts))
	ay := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], fy[i], ay[i] = p.X, p.FPGA.Kilotonnes(), p.ASIC.Kilotonnes()
	}
	return report.LineChart(os.Stdout, report.ChartOptions{
		Title:  fmt.Sprintf("%s: CFP vs %s", *domain, ax.Name),
		XLabel: ax.Name, YLabel: "total CFP [ktCO2e]", LogX: logX,
	},
		report.Series{Name: "FPGA", X: xs, Y: fy},
		report.Series{Name: "ASIC", X: xs, Y: ay})
}

// cmdRun evaluates a JSON scenario config.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	path := fs.String("config", "", "scenario JSON file")
	jsonOut := fs.Bool("json", false, "emit the breakdown as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("usage: greenfpga run -config <file.json>")
	}
	cfg, err := greenfpga.LoadScenarioConfig(*path)
	if err != nil {
		return err
	}
	scen, err := cfg.ToScenario()
	if err != nil {
		return err
	}

	type side struct {
		name string
		res  core.Assessment
	}
	var sides []side
	if cfg.FPGA != nil {
		p, err := cfg.FPGA.ToPlatform()
		if err != nil {
			return err
		}
		res, err := core.Evaluate(p, scen)
		if err != nil {
			return err
		}
		sides = append(sides, side{"FPGA", res})
	}
	if cfg.ASIC != nil {
		p, err := cfg.ASIC.ToPlatform()
		if err != nil {
			return err
		}
		res, err := core.Evaluate(p, scen)
		if err != nil {
			return err
		}
		sides = append(sides, side{"ASIC", res})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := map[string]any{}
		for _, s := range sides {
			out[s.name] = map[string]any{
				"platform":  s.res.Platform,
				"total_kg":  s.res.Total().Kilograms(),
				"breakdown": s.res.Breakdown,
				"devices":   s.res.DevicesManufactured,
			}
		}
		return enc.Encode(out)
	}

	t := report.NewTable(fmt.Sprintf("Scenario %q (%d applications, %s total)",
		scen.Name, len(scen.Apps), scen.TotalYears()),
		"Platform", "Design", "Mfg", "Pkg", "EOL", "Operation", "App-dev", "Total [kt]")
	for _, s := range sides {
		b := s.res.Breakdown
		t.AddRow(fmt.Sprintf("%s (%s)", s.name, s.res.Platform),
			fmt.Sprintf("%.2f", b.Design.Kilotonnes()),
			fmt.Sprintf("%.2f", b.Manufacturing.Kilotonnes()),
			fmt.Sprintf("%.2f", b.Packaging.Kilotonnes()),
			fmt.Sprintf("%.3f", b.EOL.Kilotonnes()),
			fmt.Sprintf("%.2f", b.Operation.Kilotonnes()),
			fmt.Sprintf("%.3f", (b.AppDevelopment+b.Configuration).Kilotonnes()),
			fmt.Sprintf("%.2f", b.Total().Kilotonnes()))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	if len(sides) == 2 {
		ratio := sides[0].res.Total().Kilograms() / sides[1].res.Total().Kilograms()
		verdict := "the FPGA is the more sustainable platform"
		if ratio >= 1 {
			verdict = "the ASIC is the more sustainable platform"
		}
		fmt.Printf("\nFPGA:ASIC ratio = %.3f — %s\n", ratio, verdict)
	}
	return nil
}

// cmdMC runs the Table 1 uncertainty study for a domain pair ratio.
func cmdMC(args []string) error {
	fs := flag.NewFlagSet("mc", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain")
	samples := fs.Int("samples", 2000, "Monte-Carlo samples")
	seed := fs.Int64("seed", 1, "random seed")
	napps := fs.Int("napps", 5, "application count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := greenfpga.DomainByName(*domain)
	if err != nil {
		return err
	}
	res, err := DomainRatioStudy(d, *napps, *samples, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("FPGA:ASIC CFP ratio for %s over Table 1 parameter ranges (%d samples, N=%d apps)\n",
		*domain, *samples, *napps)
	fmt.Printf("  mean %.3f  stddev %.3f\n", res.Mean, res.StdDev)
	for _, p := range []float64{5, 25, 50, 75, 95} {
		fmt.Printf("  p%-3.0f %.3f\n", p, res.Percentile(p))
	}
	probFPGA := 0.0
	for _, s := range res.Samples {
		if s < 1 {
			probFPGA++
		}
	}
	fmt.Printf("  P(FPGA wins) = %.1f%%\n", probFPGA/float64(len(res.Samples))*100)
	fmt.Println("  tornado (|output swing| per parameter, 10th-90th percentile):")
	for _, e := range res.Tornado {
		fmt.Printf("    %-22s %.4f\n", e.Param, e.Swing())
	}
	return nil
}

// DomainRatioStudy propagates Table 1 ranges through a domain pair's
// FPGA:ASIC ratio. Exported for the uncertainty example and benches.
func DomainRatioStudy(d isoperf.Domain, nApps, samples int, seed int64) (greenfpga.MCResult, error) {
	return greenfpga.RunMonteCarlo(greenfpga.MCConfig{
		Samples: samples,
		Seed:    seed,
		Params: []greenfpga.MCParam{
			{Name: "duty_cycle", Dist: greenfpga.TriangularDist{Lo: d.DutyCycle * 0.5, Mode: d.DutyCycle, Hi: minF(1, d.DutyCycle*1.5)}},
			{Name: "t_fe_months", Dist: greenfpga.UniformDist{Lo: 1.5, Hi: 2.5}},
			{Name: "t_be_months", Dist: greenfpga.UniformDist{Lo: 0.5, Hi: 1.5}},
			{Name: "design_staff", Dist: greenfpga.TriangularDist{Lo: d.DesignEngineers * 0.7, Mode: d.DesignEngineers, Hi: d.DesignEngineers * 1.3}},
			{Name: "recycled_fraction", Dist: greenfpga.UniformDist{Lo: 0, Hi: 1}},
			{Name: "eol_delta", Dist: greenfpga.UniformDist{Lo: 0.05, Hi: 0.95}},
			{Name: "app_lifetime_years", Dist: greenfpga.UniformDist{Lo: 1, Hi: 3}},
		},
		Model: func(draw map[string]float64) (float64, error) {
			dd := d
			dd.DutyCycle = draw["duty_cycle"]
			dd.DesignEngineers = draw["design_staff"]
			pr, err := dd.Pair()
			if err != nil {
				return 0, err
			}
			ad := pr.FPGA.AppDevProfile()
			ad.FrontEnd = units.Months(draw["t_fe_months"])
			ad.BackEnd = units.Months(draw["t_be_months"])
			pr.FPGA.AppDev = &ad
			for _, p := range []*core.Platform{&pr.FPGA, &pr.ASIC} {
				p.RecycledMaterialFraction = draw["recycled_fraction"]
				p.EOL.RecycleFraction = draw["eol_delta"]
			}
			c, err := pr.Compare(core.Uniform("mc", nApps,
				units.YearsOf(draw["app_lifetime_years"]), isoperf.ReferenceVolume, 0))
			if err != nil {
				return 0, err
			}
			return c.Ratio, nil
		},
	})
}

// cmdExampleConfig prints a sample scenario document.
func cmdExampleConfig(args []string) error {
	fs := flag.NewFlagSet("example-config", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := json.MarshalIndent(greenfpga.ExampleScenarioConfig(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// minF avoids importing math for one clamp.
func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
