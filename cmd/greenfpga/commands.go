package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"greenfpga"
	"greenfpga/api"

	"greenfpga/internal/experiments"
	"greenfpga/internal/report"
)

// cmdList prints the experiment registry.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/experiments)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, api.Experiments())
	}
	for _, id := range greenfpga.Experiments() {
		fmt.Println(id)
	}
	return nil
}

// cmdExperiment regenerates one or all paper artifacts.
func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, markdown, csv")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("usage: greenfpga experiment [-format text|markdown|csv] <id>|all")
	}
	render := func(o *experiments.Output) error {
		switch *format {
		case "text":
			return o.Render(os.Stdout)
		case "markdown", "md":
			return o.RenderMarkdown(os.Stdout)
		case "csv":
			return o.RenderCSV(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q (text, markdown, csv)", *format)
		}
	}
	id := fs.Arg(0)
	if id == "all" {
		outs, err := experiments.RunAll()
		if err != nil {
			return err
		}
		for _, o := range outs {
			if err := render(o); err != nil {
				return err
			}
		}
		return nil
	}
	out, err := experiments.Run(id)
	if err != nil {
		return err
	}
	return render(out)
}

// cmdDevices prints the Table 3 catalog.
func cmdDevices(args []string) error {
	fs := flag.NewFlagSet("devices", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/devices)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, api.Devices())
	}
	t := report.NewTable("Industry device catalog (Table 3)",
		"Name", "Kind", "Node", "Die area", "TDP", "Capacity [Mgates]", "Based on")
	for _, s := range greenfpga.IndustryDevices() {
		cap := "-"
		if s.CapacityGates > 0 {
			cap = fmt.Sprintf("%.0f", s.CapacityGates/1e6)
		}
		t.AddRow(s.Name, string(s.Kind), s.Node.Name, s.DieArea.String(),
			s.PeakPower.String(), cap, s.BasedOn)
	}
	return t.WriteText(os.Stdout)
}

// cmdDomains prints the Table 2 testcases.
func cmdDomains(args []string) error {
	fs := flag.NewFlagSet("domains", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/domains)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, api.Domains())
	}
	t := report.NewTable("Iso-performance domains (Table 2)",
		"Domain", "Area ratio", "Power ratio", "ASIC area", "ASIC TDP", "Duty")
	for _, d := range greenfpga.Domains() {
		t.AddRow(d.Name, fmt.Sprintf("%g", d.AreaRatio), fmt.Sprintf("%g", d.PowerRatio),
			d.ASICArea.String(), d.ASICPeakPower.String(), fmt.Sprintf("%.0f%%", d.DutyCycle*100))
	}
	return t.WriteText(os.Stdout)
}

// cmdRegions prints the carbon-region registry.
func cmdRegions(args []string) error {
	fs := flag.NewFlagSet("regions", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/regions)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, api.Regions())
	}
	t := report.NewTable("Carbon regions (scalar presets + hourly traces)",
		"Region", "Signal", "CI [g/kWh]", "Trace mean/min/max [g/kWh]", "Description")
	for _, r := range api.Regions().Regions {
		signal, span := "scalar", "-"
		if r.Traced {
			signal = "hourly"
			span = fmt.Sprintf("%.0f / %.0f / %.0f", r.MeanGPerKWh, r.MinGPerKWh, r.MaxGPerKWh)
		}
		t.AddRow(r.Name, signal, fmt.Sprintf("%.0f", r.IntensityGPerKWh), span, r.Description)
	}
	return t.WriteText(os.Stdout)
}

// cmdFleet runs a carbon-aware placement study through the shared api
// compute path, so its numbers match /v1/fleet exactly.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain")
	platforms := fs.String("platforms", "", "comma-separated platforms to site: kinds (fpga,asic,gpu,cpu) or catalog device names (default: the domain's fpga,asic pair)")
	regions := fs.String("regions", "", "comma-separated candidate regions (default: every registry region; see 'greenfpga regions')")
	shift := fs.String("shift", "", "load-shifting policy in traced regions: daily")
	napps := fs.Int("napps", 5, "application count")
	lifetime := fs.Float64("lifetime", 2, "application lifetime in years")
	volume := fs.Float64("volume", 1e6, "application volume")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/fleet)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	req := api.FleetRequest{
		Domain: *domain, Shift: *shift,
		Workload: &api.WorkloadSpec{NApps: *napps, LifetimeYears: *lifetime, Volume: *volume},
	}
	specs, err := platformSpecArgs(*platforms)
	if err != nil {
		return err
	}
	req.Platforms = specs
	if *regions != "" {
		for _, r := range strings.Split(*regions, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				return usagef("empty region in -regions %q", *regions)
			}
			req.Regions = append(req.Regions, r)
		}
	}
	req = req.Normalized()
	resp, err := api.RunFleet(req)
	if err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	const kgPerKt = 1e6
	cols := []string{"Region", "Signal"}
	for _, name := range resp.Platforms {
		cols = append(cols, name+" [kt]")
	}
	cols = append(cols, "Winner")
	hasSolves := false
	for _, row := range resp.Regions {
		if row.A2FNumApps != nil {
			hasSolves = true
		}
	}
	if hasSolves {
		cols = append(cols, "A2F N_app")
	}
	t := report.NewTable(fmt.Sprintf("Fleet siting: %s (N=%d apps, T=%gy, V=%g)",
		resp.Domain, req.Workload.NApps, req.Workload.LifetimeYears, req.Workload.Volume), cols...)
	for _, row := range resp.Regions {
		signal := "scalar"
		if row.Traced {
			signal = "hourly"
		}
		cells := []string{row.Region, signal}
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%.2f", c.TotalKg/kgPerKt))
		}
		cells = append(cells, row.Winner)
		if hasSolves {
			s := "-"
			if row.A2FNumApps != nil && row.A2FNumApps.Found {
				s = fmt.Sprintf("%d", int(row.A2FNumApps.Value))
			}
			cells = append(cells, s)
		}
		t.AddRow(cells...)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	for _, b := range resp.BestByPlatform {
		fmt.Printf("\nbest region for %s: %s (%.2f kt)", b.Platform, b.Region, b.TotalKg/kgPerKt)
	}
	fmt.Printf("\nminimum-CFP placement: %s in %s (%.2f kt)\n",
		resp.Best.Platform, resp.Best.Region, resp.Best.TotalKg/kgPerKt)
	if resp.Shift != "" {
		fmt.Printf("load shifting: %s (traced regions pack run-hours into their cleanest hours)\n", resp.Shift)
	}
	return nil
}

// cmdCrossover solves the three §4.2 crossover questions through the
// shared api compute path, so its numbers match /v1/crossover exactly.
func cmdCrossover(args []string) error {
	fs := flag.NewFlagSet("crossover", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain (DNN, ImgProc, Crypto)")
	lifetime := fs.Float64("lifetime", 2, "application lifetime in years (for N_app and N_vol solves)")
	napps := fs.Int("napps", 5, "application count (for T_i and N_vol solves)")
	volume := fs.Float64("volume", 1e6, "application volume (for N_app and T_i solves)")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/crossover)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	req := api.CrossoverRequest{
		Domain: *domain, LifetimeYears: *lifetime, NApps: *napps, Volume: *volume,
	}.Normalized()
	resp, err := api.RunCrossover(req)
	if err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	fmt.Printf("domain %s (T=%gy, N=%d, V=%g where fixed)\n",
		resp.Domain, req.Workload.LifetimeYears, req.Workload.NApps, req.Workload.Volume)
	if s := resp.A2FNumApps; s.Found {
		n := int(s.Value)
		fmt.Printf("  A2F at N_app = %d (FPGA wins from %d applications)\n", n, n)
	} else {
		fmt.Printf("  no N_app crossover within %d applications\n", req.MaxApps)
	}
	if s := resp.F2ALifetimeYears; s.Found {
		fmt.Printf("  F2A at T_i = %.2f years (FPGA wins below)\n", s.Value)
	} else {
		fmt.Println("  no lifetime crossover in [0.05, 10] years")
	}
	if s := resp.F2AVolume; s.Found {
		fmt.Printf("  F2A at N_vol = %.0f units (FPGA wins below)\n", s.Value)
	} else {
		fmt.Println("  no volume crossover in [1e2, 1e8]")
	}
	return nil
}

// platformSpecArgs parses a -platforms flag value into specs: known
// platform kinds become domain-set selectors, anything else a catalog
// device selector. Empty entries are usage mistakes (exit 2).
func platformSpecArgs(list string) ([]api.PlatformSpec, error) {
	if list == "" {
		return nil, nil
	}
	tokens := strings.Split(list, ",")
	for i, t := range tokens {
		tokens[i] = strings.TrimSpace(t)
		if tokens[i] == "" {
			return nil, usagef("empty platform in -platforms %q", list)
		}
	}
	return api.PlatformSpecs(tokens), nil
}

// cmdSweep runs a 1-D sweep through the shared api compute path (so
// its numbers match /v1/sweep exactly) and charts it.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain")
	axis := fs.String("axis", "napps", "sweep axis: napps, lifetime, volume")
	from := fs.Float64("from", 0, "axis start (defaults per axis)")
	to := fs.Float64("to", 0, "axis end (defaults per axis)")
	points := fs.Int("points", 0, "sample count (defaults per axis)")
	platforms := fs.String("platforms", "", "comma-separated platforms to sweep: kinds (fpga,asic,gpu,cpu) or catalog device names (default: the domain's fpga,asic pair)")
	csvOut := fs.Bool("csv", false, "emit CSV instead of a chart")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/sweep)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	req := api.SweepRequest{
		Domain: *domain, Axis: *axis, From: *from, To: *to, Points: *points,
	}
	specs, err := platformSpecArgs(*platforms)
	if err != nil {
		return err
	}
	req.Platforms = specs
	req = req.Normalized()
	resp, err := api.RunSweep(req)
	if err != nil {
		return err
	}
	// Chart cosmetics only; the sample values live in resp.Points.
	axisName, logX := map[string]string{
		"napps": "Num Apps", "lifetime": "App Lifetime [y]", "volume": "App Volume",
	}[req.Axis], req.Axis == "volume"

	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	const kgPerKt = 1e6
	if len(resp.Platforms) > 0 {
		// Spec-selected platform sets carry per-platform totals.
		if *csvOut {
			cols := append([]string{axisName}, resp.Platforms...)
			t := report.NewTable("", cols...)
			for _, p := range resp.Points {
				row := []string{fmt.Sprintf("%g", p.X)}
				for _, kg := range p.TotalsKg {
					row = append(row, fmt.Sprintf("%.3f", kg/kgPerKt))
				}
				t.AddRow(row...)
			}
			return t.WriteCSV(os.Stdout)
		}
		xs := make([]float64, len(resp.Points))
		ys := make([][]float64, len(resp.Platforms))
		for j := range ys {
			ys[j] = make([]float64, len(resp.Points))
		}
		for i, p := range resp.Points {
			xs[i] = p.X
			for j, kg := range p.TotalsKg {
				ys[j][i] = kg / kgPerKt
			}
		}
		series := make([]report.Series, len(resp.Platforms))
		for j, name := range resp.Platforms {
			series[j] = report.Series{Name: name, X: xs, Y: ys[j]}
		}
		return report.LineChart(os.Stdout, report.ChartOptions{
			Title:  fmt.Sprintf("%d-platform sweep: CFP vs %s", len(resp.Platforms), axisName),
			XLabel: axisName, YLabel: "total CFP [ktCO2e]", LogX: logX,
		}, series...)
	}
	if *csvOut {
		t := report.NewTable("", axisName, "FPGA [kt]", "ASIC [kt]", "ratio")
		for _, p := range resp.Points {
			t.AddRow(fmt.Sprintf("%g", p.X), fmt.Sprintf("%.3f", p.FPGAKg/kgPerKt),
				fmt.Sprintf("%.3f", p.ASICKg/kgPerKt), fmt.Sprintf("%.4f", p.Ratio))
		}
		return t.WriteCSV(os.Stdout)
	}
	xs := make([]float64, len(resp.Points))
	fy := make([]float64, len(resp.Points))
	ay := make([]float64, len(resp.Points))
	for i, p := range resp.Points {
		xs[i], fy[i], ay[i] = p.X, p.FPGAKg/kgPerKt, p.ASICKg/kgPerKt
	}
	return report.LineChart(os.Stdout, report.ChartOptions{
		Title:  fmt.Sprintf("%s: CFP vs %s", resp.Domain, axisName),
		XLabel: axisName, YLabel: "total CFP [ktCO2e]", LogX: logX,
	},
		report.Series{Name: "FPGA", X: xs, Y: fy},
		report.Series{Name: "ASIC", X: xs, Y: ay})
}

// cmdRun evaluates a JSON scenario config through the shared api
// compute path, so its numbers match /v1/evaluate exactly.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	path := fs.String("config", "", "scenario JSON file")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/evaluate)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usagef("usage: greenfpga run -config <file.json>")
	}
	cfg, err := greenfpga.LoadScenarioConfig(*path)
	if err != nil {
		return err
	}
	scen, err := cfg.ToScenario()
	if err != nil {
		return err
	}
	resp, err := api.Evaluate(&api.EvaluateRequest{Scenario: cfg})
	if err != nil {
		return err
	}

	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}

	type side struct {
		name string
		res  *api.PlatformResult
	}
	var sides []side
	if resp.FPGA != nil {
		sides = append(sides, side{"FPGA", resp.FPGA})
	}
	if resp.ASIC != nil {
		sides = append(sides, side{"ASIC", resp.ASIC})
	}
	const kgPerKt = 1e6
	t := report.NewTable(fmt.Sprintf("Scenario %q (%d applications, %s total)",
		scen.Name, len(scen.Apps), scen.TotalYears()),
		"Platform", "Design", "Mfg", "Pkg", "EOL", "Operation", "App-dev", "Total [kt]")
	for _, s := range sides {
		b := s.res.Breakdown
		t.AddRow(fmt.Sprintf("%s (%s)", s.name, s.res.Platform),
			fmt.Sprintf("%.2f", b.DesignKg/kgPerKt),
			fmt.Sprintf("%.2f", b.ManufacturingKg/kgPerKt),
			fmt.Sprintf("%.2f", b.PackagingKg/kgPerKt),
			fmt.Sprintf("%.3f", b.EOLKg/kgPerKt),
			fmt.Sprintf("%.2f", b.OperationKg/kgPerKt),
			fmt.Sprintf("%.3f", (b.AppDevelopmentKg+b.ConfigurationKg)/kgPerKt),
			fmt.Sprintf("%.2f", b.TotalKg/kgPerKt))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	if resp.Ratio != nil {
		verdict := "the FPGA is the more sustainable platform"
		if resp.Verdict == "asic" {
			verdict = "the ASIC is the more sustainable platform"
		}
		fmt.Printf("\nFPGA:ASIC ratio = %.3f — %s\n", *resp.Ratio, verdict)
	}
	return nil
}

// cmdMC runs the Table 1 uncertainty study for a domain pair ratio
// through the shared api compute path (greenfpga.DomainRatioStudy),
// so its numbers match /v1/mc exactly.
func cmdMC(args []string) error {
	fs := flag.NewFlagSet("mc", flag.ContinueOnError)
	domain := fs.String("domain", "DNN", "iso-performance domain")
	samples := fs.Int("samples", 2000, "Monte-Carlo samples")
	seed := fs.Int64("seed", 1, "random seed")
	napps := fs.Int("napps", 5, "application count")
	platforms := fs.String("platforms", "", "two comma-separated platform kinds of the domain set (fpga,asic,gpu,cpu; default fpga,asic)")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/mc)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	req := api.MonteCarloRequest{
		Domain: *domain, Samples: *samples, Seed: *seed, NApps: *napps,
	}
	specs, err := platformSpecArgs(*platforms)
	if err != nil {
		return err
	}
	req.Platforms = specs
	resp, err := api.RunMonteCarlo(req)
	if err != nil {
		return err
	}
	if *jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	labelA, labelB := "FPGA", "ASIC"
	if resp.PlatformA != "" {
		labelA, labelB = strings.ToUpper(resp.PlatformA), strings.ToUpper(resp.PlatformB)
	}
	fmt.Printf("%s:%s CFP ratio for %s over Table 1 parameter ranges (%d samples, N=%d apps)\n",
		labelA, labelB, resp.Domain, resp.Samples, resp.NApps)
	fmt.Printf("  mean %.3f  stddev %.3f\n", resp.Mean, resp.StdDev)
	pct := resp.Percentiles
	for _, p := range []struct {
		label string
		v     float64
	}{{"5", pct.P5}, {"25", pct.P25}, {"50", pct.P50}, {"75", pct.P75}, {"95", pct.P95}} {
		fmt.Printf("  p%-3s %.3f\n", p.label, p.v)
	}
	fmt.Printf("  P(%s wins) = %.1f%%\n", labelA, resp.ProbFPGAWins*100)
	fmt.Println("  tornado (|output swing| per parameter, 10th-90th percentile):")
	for _, e := range resp.Tornado {
		fmt.Printf("    %-22s %.4f\n", e.Param, e.Swing)
	}
	return nil
}

// cmdExampleConfig prints a sample scenario document.
func cmdExampleConfig(args []string) error {
	fs := flag.NewFlagSet("example-config", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	data, err := json.MarshalIndent(greenfpga.ExampleScenarioConfig(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
