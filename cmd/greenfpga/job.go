package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"greenfpga/api"
	"greenfpga/client"
)

// cmdJob drives the asynchronous job surface of a running service
// (one started with `greenfpga serve -store <dir>`): submit a compute
// request as a durable, resumable job, poll or wait it out, fetch its
// result, cancel it. Results are byte-identical to the synchronous
// endpoints' responses for the same request — a job is the same
// computation, checkpointed so it survives restarts.
func cmdJob(args []string) error {
	if len(args) < 1 {
		return usagef("job: need a subcommand: submit, list, status, result, cancel")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		return cmdJobSubmit(rest)
	case "list":
		return cmdJobList(rest)
	case "status":
		return cmdJobStatus(rest)
	case "result":
		return cmdJobResult(rest)
	case "cancel":
		return cmdJobCancel(rest)
	case "help", "-h", "--help":
		fmt.Println(`usage: greenfpga job <subcommand> [flags]

subcommands:
  submit -base <url> -endpoint <name> [-request <json>|-request-file <f>] [-wait]
                                  submit a compute request as an async job;
                                  endpoints: evaluate, compare, crossover,
                                  timeline, sweep, mc
  list   -base <url>              list the service's jobs, newest first
  status -base <url> -id <id>     poll one job's state and chunk progress
  result -base <url> -id <id>     print a done job's response document
  cancel -base <url> -id <id>     cancel a job and remove its record

The service must run with -store: jobs checkpoint into the durable
store and resume across restarts.`)
		return nil
	default:
		return usagef("job: unknown subcommand %q (submit, list, status, result, cancel)", sub)
	}
}

// jobClient builds the service client shared by the subcommands.
func jobClient(base string) (*client.Client, error) {
	if base == "" {
		return nil, usagef("job: -base is required (a service started with 'greenfpga serve -store <dir>')")
	}
	return client.New(base, client.WithRetry(client.RetryPolicy{})), nil
}

// printDoc writes v as canonical JSON to stdout.
func printDoc(v any) error { return api.WriteJSON(os.Stdout, v) }

func cmdJobSubmit(args []string) error {
	fs := flag.NewFlagSet("job submit", flag.ContinueOnError)
	base := fs.String("base", "", "service base URL (required)")
	endpoint := fs.String("endpoint", "", "compute endpoint to run (required; e.g. mc, sweep, evaluate)")
	request := fs.String("request", "", "inline request JSON (default: {})")
	requestFile := fs.String("request-file", "", "read the request JSON from this file ('-' for stdin)")
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state, then print it")
	poll := fs.Duration("poll", 250*time.Millisecond, "poll interval with -wait")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *endpoint == "" {
		return usagef("job submit: -endpoint is required")
	}
	if *request != "" && *requestFile != "" {
		return usagef("job submit: -request and -request-file are mutually exclusive")
	}
	raw := json.RawMessage("{}")
	switch {
	case *request != "":
		raw = json.RawMessage(*request)
	case *requestFile == "-":
		data, err := readAllStdin()
		if err != nil {
			return err
		}
		raw = data
	case *requestFile != "":
		data, err := os.ReadFile(*requestFile)
		if err != nil {
			return err
		}
		raw = data
	}
	c, err := jobClient(*base)
	if err != nil {
		return err
	}
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, *endpoint, raw)
	if err != nil {
		return err
	}
	if !*wait {
		return printDoc(st)
	}
	fmt.Fprintf(os.Stderr, "job %s submitted (%d chunks); waiting\n", st.ID, st.Chunks)
	fin, err := c.WaitJob(ctx, st.ID, *poll)
	if err != nil {
		return err
	}
	if err := printDoc(fin); err != nil {
		return err
	}
	if fin.State != "done" {
		return fmt.Errorf("job %s ended %s", fin.ID, fin.State)
	}
	return nil
}

// readAllStdin slurps stdin for -request-file -.
func readAllStdin() ([]byte, error) {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, fmt.Errorf("job submit: reading stdin: %w", err)
	}
	return data, nil
}

func cmdJobList(args []string) error {
	fs := flag.NewFlagSet("job list", flag.ContinueOnError)
	base := fs.String("base", "", "service base URL (required)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	c, err := jobClient(*base)
	if err != nil {
		return err
	}
	list, err := c.Jobs(context.Background())
	if err != nil {
		return err
	}
	return printDoc(list)
}

// jobID extracts the -id flag shared by status/result/cancel.
func jobID(name string, args []string) (base, id string, err error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	baseF := fs.String("base", "", "service base URL (required)")
	idF := fs.String("id", "", "job ID (required; from 'job submit')")
	if err := parseFlags(fs, args); err != nil {
		return "", "", err
	}
	if *idF == "" {
		return "", "", usagef("%s: -id is required", name)
	}
	return *baseF, *idF, nil
}

func cmdJobStatus(args []string) error {
	base, id, err := jobID("job status", args)
	if err != nil {
		return err
	}
	c, err := jobClient(base)
	if err != nil {
		return err
	}
	st, err := c.Job(context.Background(), id)
	if err != nil {
		return err
	}
	return printDoc(st)
}

func cmdJobResult(args []string) error {
	base, id, err := jobID("job result", args)
	if err != nil {
		return err
	}
	c, err := jobClient(base)
	if err != nil {
		return err
	}
	var raw json.RawMessage
	if err := c.JobResult(context.Background(), id, &raw); err != nil {
		return err
	}
	_, err = fmt.Printf("%s\n", raw)
	return err
}

func cmdJobCancel(args []string) error {
	base, id, err := jobID("job cancel", args)
	if err != nil {
		return err
	}
	c, err := jobClient(base)
	if err != nil {
		return err
	}
	if err := c.CancelJob(context.Background(), id); err != nil {
		return err
	}
	fmt.Printf("job %s canceled\n", id)
	return nil
}
