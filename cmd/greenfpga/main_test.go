package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greenfpga/api"
	"greenfpga/internal/config"
)

// captureStdout runs f with os.Stdout redirected to a buffer.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan struct{})
	var buf bytes.Buffer
	go func() {
		defer close(done)
		io.Copy(&buf, r)
	}()
	runErr := f()
	w.Close()
	<-done
	return buf.String(), runErr
}

func TestCmdList(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdList(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig2", "fig11", "scenarios"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExperiment(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdExperiment([]string{"table3"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IndustryASIC1", "IndustryFPGA2", "340 mm^2"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment table3 missing %q:\n%s", want, out)
		}
	}
	if err := cmdExperiment([]string{}); err == nil {
		t.Error("missing id must error")
	}
	if err := cmdExperiment([]string{"fig99"}); err == nil {
		t.Error("unknown id must error")
	}
}

func TestCmdExperimentFormats(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdExperiment([]string{"-format", "markdown", "table2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| Testcase | DNN | ImgProc | Crypto |") {
		t.Errorf("markdown format:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return cmdExperiment([]string{"-format", "csv", "table3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndustryASIC1,asic") {
		t.Errorf("csv format:\n%s", out)
	}
	if err := cmdExperiment([]string{"-format", "yaml", "table2"}); err == nil {
		t.Error("unknown format must error")
	}
}

func TestCmdCompare(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCompare([]string{"-fpga", "IndustryFPGA2", "-asic", "IndustryASIC2", "-napps", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IndustryFPGA2", "IndustryASIC2", "FPGA:ASIC ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if err := cmdCompare([]string{"-fpga", "IndustryASIC1"}); err == nil {
		t.Error("ASIC passed as -fpga must error")
	}
	if err := cmdCompare([]string{"-asic", "IndustryFPGA1"}); err == nil {
		t.Error("FPGA passed as -asic must error")
	}
	if err := cmdCompare([]string{"-fpga", "nope"}); err == nil {
		t.Error("unknown device must error")
	}
	if err := cmdCompare([]string{"-fpga", "IndustryFPGA1", "-json"}); err == nil {
		t.Error("-json with catalog mode must error")
	}
	if err := cmdCompare([]string{"-fpga", "IndustryFPGA1", "-domain", "DNN"}); err == nil {
		t.Error("-domain with catalog mode must error")
	}
	if err := cmdCompare([]string{"-asic", "IndustryASIC1", "-platforms", "fpga,gpu"}); err == nil {
		t.Error("-platforms with catalog mode must error")
	}
	// Catalog-only deployment knobs must not be silently dropped by
	// the domain-set mode.
	if err := cmdCompare([]string{"-duty", "0.9"}); err == nil || !strings.Contains(err.Error(), "catalog") {
		t.Errorf("-duty without catalog mode must error, got %v", err)
	}
	if err := cmdCompare([]string{"-domain", "DNN", "-pue", "1.5"}); err == nil {
		t.Error("-pue with domain mode must error")
	}
}

// TestCmdCompareSetMode covers the default domain-set mode: the full
// four-platform comparison with frontier, and subsetting.
func TestCmdCompareSetMode(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdCompare(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DNN platform set", "DNN-GPU", "DNN-CPU",
		"winner at N_app=5", "winner per N_app"} {
		if !strings.Contains(out, want) {
			t.Errorf("set compare missing %q:\n%s", want, out)
		}
	}
	out, err = captureStdout(t, func() error {
		return cmdCompare([]string{"-domain", "Crypto", "-platforms", "fpga,gpu"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Crypto-FPGA") || strings.Contains(out, "Crypto-CPU") {
		t.Errorf("platform subset broken:\n%s", out)
	}
	if err := cmdCompare([]string{"-domain", "Quantum"}); err == nil {
		t.Error("unknown domain must error")
	}
	if err := cmdCompare([]string{"-platforms", "fpga"}); err == nil {
		t.Error("single platform must error")
	}
}

// TestCmdCompareJSONMatchesAPI checks the acceptance guarantee: the
// -json document equals the canonical api compute result (the same
// document /v1/compare serves).
func TestCmdCompareJSONMatchesAPI(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCompare([]string{"-json", "-domain", "DNN", "-napps", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.RunCompare(api.CompareRequest{Domain: "DNN", NApps: 4}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if out != buf.String() {
		t.Errorf("compare -json differs from the api document:\n%q\nvs\n%q", out, buf.String())
	}
}

func TestCmdWafer(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdWafer(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IndustryASIC2", "Gross dice", "Per good die"} {
		if !strings.Contains(out, want) {
			t.Errorf("wafer output missing %q:\n%s", want, out)
		}
	}
	out, err = captureStdout(t, func() error {
		return cmdWafer([]string{"-device", "IndustryFPGA1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "IndustryASIC1") || !strings.Contains(out, "IndustryFPGA1") {
		t.Errorf("device filter broken:\n%s", out)
	}
	if err := cmdWafer([]string{"-device", "nope"}); err == nil {
		t.Error("unknown device must error")
	}
}

func TestCmdDevicesAndDomains(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdDevices(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndustryFPGA1") || !strings.Contains(out, "Agilex") {
		t.Errorf("devices output:\n%s", out)
	}
	out, err = captureStdout(t, func() error { return cmdDomains(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ImgProc") || !strings.Contains(out, "7.42") {
		t.Errorf("domains output:\n%s", out)
	}
}

func TestCmdCrossover(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCrossover([]string{"-domain", "DNN"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A2F at N_app = 6", "F2A at T_i = 1.59"} {
		if !strings.Contains(out, want) {
			t.Errorf("crossover output missing %q:\n%s", want, out)
		}
	}
	if err := cmdCrossover([]string{"-domain", "Quantum"}); err == nil {
		t.Error("unknown domain must error")
	}
}

func TestCmdSweep(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSweep([]string{"-domain", "Crypto", "-axis", "lifetime", "-points", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FPGA") || !strings.Contains(out, "App Lifetime") {
		t.Errorf("sweep chart:\n%s", out)
	}
	// CSV mode.
	out, err = captureStdout(t, func() error {
		return cmdSweep([]string{"-domain", "DNN", "-axis", "volume", "-points", "4", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ratio") || len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Errorf("sweep csv:\n%s", out)
	}
	if err := cmdSweep([]string{"-axis", "frequency"}); err == nil {
		t.Error("unknown axis must error")
	}
}

// TestCmdSweepPlatforms covers the -platforms spec wiring: kind lists
// and catalog device names sweep any platform set, the -json document
// is exactly the api (and therefore server) response, and empty list
// entries are usage errors (exit 2).
func TestCmdSweepPlatforms(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSweep([]string{"-platforms", "gpu,cpu", "-to", "3", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	req := api.SweepRequest{Domain: "DNN", Axis: "napps", To: 3,
		Platforms: api.PlatformSpecs([]string{"gpu", "cpu"})}.Normalized()
	want, err := api.RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if out != buf.String() {
		t.Errorf("sweep -platforms -json differs from the api document:\n%q\nvs\n%q", out, buf.String())
	}
	// Catalog device names become device specs; the chart carries one
	// series per platform.
	out, err = captureStdout(t, func() error {
		return cmdSweep([]string{"-platforms", "IndustryFPGA1,IndustryASIC1", "-to", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndustryFPGA1") || !strings.Contains(out, "IndustryASIC1") {
		t.Errorf("device sweep chart:\n%s", out)
	}
	// CSV mode names the platforms as columns.
	out, err = captureStdout(t, func() error {
		return cmdSweep([]string{"-platforms", "fpga,asic,gpu", "-to", "2", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DNN-GPU") {
		t.Errorf("set sweep csv:\n%s", out)
	}
	if code := run([]string{"sweep", "-platforms", "gpu,,cpu"}); code != 2 {
		t.Errorf("empty -platforms entry exited %d, want 2", code)
	}
	if code := run([]string{"sweep", "-platforms", "npu,asic"}); code != 1 {
		t.Errorf("unknown platform exited %d, want 1 (runtime error)", code)
	}
}

// TestCmdMCPlatforms covers the -platforms pair on the uncertainty
// study: labels follow the studied pair and -json is exactly the api
// document.
func TestCmdMCPlatforms(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdMC([]string{"-samples", "50", "-seed", "3", "-platforms", "gpu,asic"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPU:ASIC CFP ratio", "P(GPU wins)", "tornado"} {
		if !strings.Contains(out, want) {
			t.Errorf("mc -platforms output missing %q:\n%s", want, out)
		}
	}
	out, err = captureStdout(t, func() error {
		return cmdMC([]string{"-samples", "50", "-seed", "3", "-platforms", "gpu,asic", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.RunMonteCarlo(api.MonteCarloRequest{
		Domain: "DNN", Samples: 50, Seed: 3, NApps: 5,
		Platforms: api.PlatformSpecs([]string{"gpu", "asic"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if out != buf.String() {
		t.Errorf("mc -platforms -json differs from the api document:\n%q\nvs\n%q", out, buf.String())
	}
	if code := run([]string{"mc", "-platforms", ","}); code != 2 {
		t.Errorf("empty -platforms entries exited %d, want 2", code)
	}
	if code := run([]string{"mc", "-platforms", "IndustryFPGA1,IndustryASIC1"}); code != 1 {
		t.Errorf("catalog devices at mc exited %d, want 1 (calibration-bound study)", code)
	}
}

// TestCmdTimeline covers the timeline mode: the staggered default,
// refresh-cap behavior, platform subsetting, and its error paths.
func TestCmdTimeline(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdTimeline([]string{"-chip-lifetime", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DNN timeline: 5 deployments over 4y (sequential span 10y)",
		"Sequential [kt]", "peak concurrency: 4", "winner on this timeline:"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
	out, err = captureStdout(t, func() error {
		return cmdTimeline([]string{"-domain", "Crypto", "-platforms", "fpga,asic", "-sizing", "dedicated"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Crypto-FPGA") || strings.Contains(out, "Crypto-GPU") {
		t.Errorf("platform subset broken:\n%s", out)
	}
	if !strings.Contains(out, "dedicated fleet sizing") {
		t.Errorf("sizing missing from header:\n%s", out)
	}
	if err := cmdTimeline([]string{"-domain", "Quantum"}); err == nil {
		t.Error("unknown domain must error")
	}
	if err := cmdTimeline([]string{"-sizing", "elastic"}); err == nil {
		t.Error("unknown sizing must error")
	}
	if err := cmdTimeline([]string{"-platforms", "fpga"}); err == nil {
		t.Error("single platform must error")
	}
}

// TestCmdTimelineJSONMatchesAPI checks the acceptance guarantee: the
// -json document equals the canonical api compute result (the same
// document POST /v1/timeline serves).
func TestCmdTimelineJSONMatchesAPI(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdTimeline([]string{"-json", "-napps", "4", "-interval", "1", "-chip-lifetime", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := api.RunTimeline(api.TimelineRequest{
		NApps: 4, IntervalYears: 1, ChipLifetimeYears: 8,
	}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if out != buf.String() {
		t.Errorf("timeline -json differs from the api document:\n%q\nvs\n%q", out, buf.String())
	}
}

func TestCmdRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := config.Save(path, config.Example()); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return cmdRun([]string{"-config", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FPGA (IndustryFPGA1)", "ASIC (IndustryASIC1)", "FPGA:ASIC ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
	// JSON mode.
	out, err = captureStdout(t, func() error {
		return cmdRun([]string{"-config", path, "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"total_kg\"") {
		t.Errorf("run json output:\n%s", out)
	}
	if err := cmdRun(nil); err == nil {
		t.Error("missing config must error")
	}
	if err := cmdRun([]string{"-config", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file must error")
	}
}

func TestCmdMC(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdMC([]string{"-domain", "DNN", "-samples", "100", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P(FPGA wins)", "tornado", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("mc output missing %q:\n%s", want, out)
		}
	}
	if err := cmdMC([]string{"-domain", "Quantum"}); err == nil {
		t.Error("unknown domain must error")
	}
}

func TestCmdExampleConfig(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdExampleConfig(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndustryFPGA1") || !strings.Contains(out, "lifetime_years") {
		t.Errorf("example config:\n%s", out)
	}
	// The printed config must itself parse.
	if _, err := config.Parse([]byte(out)); err != nil {
		t.Errorf("printed config does not parse: %v", err)
	}
}

func TestCommandTableComplete(t *testing.T) {
	for _, name := range []string{"list", "experiment", "devices", "domains",
		"kernels", "compare", "crossover", "sweep", "timeline", "run", "plan",
		"dse", "mc", "serve", "validate", "example-config", "help"} {
		if _, ok := commands[name]; !ok {
			t.Errorf("command %q not registered", name)
		}
	}
}

// captureStderr runs f with os.Stderr redirected to a buffer.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()

	done := make(chan struct{})
	var buf bytes.Buffer
	go func() {
		defer close(done)
		io.Copy(&buf, r)
	}()
	f()
	w.Close()
	<-done
	return buf.String()
}

// TestRunExitCodes pins the process exit-code contract: 0 on success
// and every help spelling, 1 on runtime failures, 2 on usage mistakes
// — with the diagnostics on stderr exactly once.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // substring the diagnostics must carry ("" = none)
	}{
		{"no args", nil, 2, "commands:"},
		{"unknown command", []string{"frobnicate"}, 2, `unknown command "frobnicate"`},
		{"unknown flag", []string{"crossover", "-bogus"}, 2, "flag provided but not defined"},
		{"bad flag value", []string{"timeline", "-napps", "x"}, 2, "invalid value"},
		{"missing required", []string{"run"}, 2, "usage: greenfpga run"},
		{"missing experiment id", []string{"experiment"}, 2, "usage: greenfpga experiment"},
		{"runtime failure", []string{"crossover", "-domain", "Quantum"}, 1, "unknown domain"},
		{"subcommand help", []string{"crossover", "-h"}, 0, "Usage of crossover"},
		{"top-level help flag", []string{"--help"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			var stdout string
			stderr := captureStderr(t, func() {
				stdout, _ = captureStdout(t, func() error { code = run(tc.args); return nil })
			})
			if code != tc.code {
				t.Errorf("run(%v) = %d, want %d (stderr: %q)", tc.args, code, tc.code, stderr)
			}
			if tc.stderr != "" && !strings.Contains(stderr, tc.stderr) {
				t.Errorf("stderr missing %q:\n%s", tc.stderr, stderr)
			}
			if tc.stderr != "" && strings.Count(stderr, "greenfpga:")+strings.Count(stderr, "Usage of") > 2 {
				t.Errorf("diagnostics repeated on stderr:\n%s", stderr)
			}
			_ = stdout
		})
	}
	// Usage errors never print the message twice: a flag-parse failure
	// is reported by the flag set only.
	stderr := captureStderr(t, func() { run([]string{"sweep", "-bogus"}) })
	if strings.Contains(stderr, "greenfpga: flag provided") {
		t.Errorf("flag error printed twice:\n%s", stderr)
	}
}

func TestCmdHelp(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdHelp(nil) })
	if err != nil {
		t.Fatalf("help must succeed, got %v", err)
	}
	for _, want := range []string{"commands:", "serve", "crossover", "example-config"} {
		if !strings.Contains(out, want) {
			t.Errorf("help output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONFlagsMatchAPI checks the satellite guarantee: the CLI's
// -json modes emit the canonical api documents byte-identically to
// the corresponding server endpoints.
func TestJSONFlagsMatchAPI(t *testing.T) {
	canonical := func(v any) string {
		var buf bytes.Buffer
		if err := api.WriteJSON(&buf, v); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, tc := range []struct {
		name string
		run  func() error
		want string
	}{
		{"list", func() error { return cmdList([]string{"-json"}) }, canonical(api.Experiments())},
		{"devices", func() error { return cmdDevices([]string{"-json"}) }, canonical(api.Devices())},
		{"domains", func() error { return cmdDomains([]string{"-json"}) }, canonical(api.Domains())},
		{"regions", func() error { return cmdRegions([]string{"-json"}) }, canonical(api.Regions())},
	} {
		out, err := captureStdout(t, tc.run)
		if err != nil {
			t.Fatalf("%s -json: %v", tc.name, err)
		}
		if out != tc.want {
			t.Errorf("%s -json differs from the api document:\n%q\nvs\n%q", tc.name, out, tc.want)
		}
	}
}

func TestCmdCrossoverJSON(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCrossover([]string{"-domain", "DNN", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp api.CrossoverResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("crossover -json is not a CrossoverResponse: %v\n%s", err, out)
	}
	if resp.Domain != "DNN" || !resp.A2FNumApps.Found || resp.A2FNumApps.Value != 6 {
		t.Errorf("crossover -json: %+v", resp)
	}
}

func TestCmdFleetJSON(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdFleet([]string{"-regions", "iceland,taiwan,oregon", "-shift", "daily", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp api.FleetResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("fleet -json is not a FleetResponse: %v\n%s", err, out)
	}
	if resp.Domain != "DNN" || len(resp.Regions) != 3 || len(resp.Platforms) != 2 {
		t.Fatalf("fleet -json shape: %+v", resp)
	}
	if resp.Best.Region != "iceland" {
		t.Errorf("hydro grid must win the siting study, got %+v", resp.Best)
	}
	if resp.Shift != "daily" {
		t.Errorf("shift policy not echoed: %+v", resp)
	}
}

func TestCmdFleetText(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdFleet([]string{"-regions", "iceland,oregon"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fleet siting", "iceland", "oregon", "hourly", "minimum-CFP placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet text output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdFleetBadRegion(t *testing.T) {
	if err := cmdFleet([]string{"-regions", "atlantis"}); err == nil {
		t.Error("unknown region must error")
	}
}

func TestCmdServeBadAddr(t *testing.T) {
	if err := cmdServe([]string{"-addr", "256.1.2.3:bogus"}); err == nil {
		t.Error("unlistenable address must error")
	}
}

// TestSubcommandHelpIsErrHelp pins the contract main relies on to
// exit 0 on `greenfpga <cmd> -h`: flag sets return flag.ErrHelp.
func TestSubcommandHelpIsErrHelp(t *testing.T) {
	old := os.Stderr
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devnull // the flag set prints its usage to stderr
	defer func() { os.Stderr = old; devnull.Close() }()
	for name, cmd := range map[string]func([]string) error{
		"crossover": cmdCrossover, "serve": cmdServe, "run": cmdRun,
	} {
		if err := cmd([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s -h returned %v, want flag.ErrHelp", name, err)
		}
	}
}

func TestCmdKernels(t *testing.T) {
	out, err := captureStdout(t, func() error { return cmdKernels(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resnet50-int8", "aes256-gcm", "h265-encode-4k"} {
		if !strings.Contains(out, want) {
			t.Errorf("kernels missing %q:\n%s", want, out)
		}
	}
	out, err = captureStdout(t, func() error { return cmdKernels([]string{"-domain", "Crypto"}) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "resnet50") || !strings.Contains(out, "sha3-512") {
		t.Errorf("domain filter broken:\n%s", out)
	}
}

func TestCmdDSE(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdDSE([]string{"-generations", "3", "-top", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimum:") || !strings.Contains(out, "Rank") {
		t.Errorf("dse output:\n%s", out)
	}
	if err := cmdDSE([]string{"-kernel", "quantum"}); err == nil {
		t.Error("unknown kernel must error")
	}
	if err := cmdDSE([]string{"-generations", "0"}); err == nil {
		t.Error("zero generations must error")
	}
}

func TestCmdPlanAndValidate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := config.Save(path, config.Example()); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error { return cmdPlan([]string{"-config", path}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Portfolio plan", "all-ASIC", "all-FPGA", "saves"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	if err := cmdPlan(nil); err == nil {
		t.Error("missing config must error")
	}
	// A config with only one platform cannot be planned.
	single := config.Example()
	single.ASIC = nil
	singlePath := filepath.Join(dir, "single.json")
	if err := config.Save(singlePath, single); err != nil {
		t.Fatal(err)
	}
	if err := cmdPlan([]string{"-config", singlePath}); err == nil {
		t.Error("single-platform config must error")
	}

	out, err = captureStdout(t, func() error { return cmdValidate([]string{"-config", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK") || !strings.Contains(out, "3 application(s)") {
		t.Errorf("validate output:\n%s", out)
	}
	if err := cmdValidate(nil); err == nil {
		t.Error("missing config must error")
	}
	if err := cmdValidate([]string{"-config", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file must error")
	}
}
