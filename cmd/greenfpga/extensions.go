package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"greenfpga"
	"greenfpga/api"

	"greenfpga/internal/config"
	"greenfpga/internal/fab"
	"greenfpga/internal/report"
	"greenfpga/internal/yield"
)

// cmdKernels lists the workload library.
func cmdKernels(args []string) error {
	fs := flag.NewFlagSet("kernels", flag.ContinueOnError)
	domain := fs.String("domain", "", "filter by domain (DNN, ImgProc, Crypto)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	t := report.NewTable("Workload kernel library",
		"Kernel", "Domain", "PE gates [M]", "PE throughput", "W/Mgate")
	for _, k := range greenfpga.Kernels() {
		if *domain != "" && k.Domain != *domain {
			continue
		}
		t.AddRow(k.Name, k.Domain,
			fmt.Sprintf("%.2f", k.BaseGates/1e6),
			fmt.Sprintf("%g %s", k.BaseThroughput, k.Unit),
			fmt.Sprintf("%.2f", k.WattsPerMGate))
	}
	return t.WriteText(os.Stdout)
}

// cmdDSE explores the node x platform x sizing space for a kernel
// roadmap.
func cmdDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	kernel := fs.String("kernel", "resnet50-int8", "workload kernel (see 'greenfpga kernels')")
	target := fs.Float64("target", 4000, "initial throughput target in the kernel's unit")
	growth := fs.Float64("growth", 1.5, "per-generation throughput growth factor")
	generations := fs.Int("generations", 6, "application generations")
	lifetime := fs.Float64("lifetime", 1.5, "generation lifetime in years")
	volume := fs.Float64("volume", 2e4, "deployment volume")
	duty := fs.Float64("duty", 0.3, "duty cycle")
	top := fs.Int("top", 10, "candidates to print")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	k, err := greenfpga.KernelByName(*kernel)
	if err != nil {
		return err
	}
	s, err := greenfpga.KernelRoadmap(k, *target, *growth, *generations,
		greenfpga.Years(*lifetime), *volume)
	if err != nil {
		return err
	}
	res, err := greenfpga.ExploreDesignSpace(greenfpga.DSEInputs{
		Apps:      s.Apps,
		DutyCycle: *duty,
	})
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Carbon-aware DSE: %s, %d generations x %gy, %g units, duty %g",
			*kernel, *generations, *lifetime, *volume, *duty),
		"Rank", "Candidate", "Embodied", "Operational", "Total")
	for i, c := range res.Candidates {
		if i >= *top {
			break
		}
		t.AddRow(fmt.Sprintf("%d", i+1), c.String(),
			c.Embodied.String(), c.Operational.String(), c.Total.String())
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\noptimum: %s\n", res.Best())
	return nil
}

// cmdPlan optimizes a portfolio from a JSON scenario config: the
// config's FPGA and ASIC platforms plus its application list become
// the planning problem.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	path := fs.String("config", "", "scenario JSON with both fpga and asic platforms")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usagef("usage: greenfpga plan -config <file.json>")
	}
	cfg, err := config.Load(*path)
	if err != nil {
		return err
	}
	if cfg.FPGA == nil || cfg.ASIC == nil {
		return fmt.Errorf("plan needs both fpga and asic platforms in the config")
	}
	fpga, err := cfg.FPGA.ToPlatform()
	if err != nil {
		return err
	}
	asic, err := cfg.ASIC.ToPlatform()
	if err != nil {
		return err
	}
	scen, err := cfg.ToScenario()
	if err != nil {
		return err
	}
	plan, err := greenfpga.OptimizePortfolio(greenfpga.PlannerInputs{
		FPGA: fpga, ASIC: asic, Apps: scen.Apps, StrictEq2: cfg.StrictEq2,
	})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Portfolio plan for %q", cfg.Name),
		"Application", "Platform", "Attributed CFP")
	for _, a := range plan.Assignments {
		t.AddRow(a.App, string(a.Platform), a.Cost.String())
	}
	t.AddRow("(shared fleet embodied)", "-", plan.FleetEmbodied.String())
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntotal %v | all-ASIC %v | all-FPGA %v | saves %v (exact=%v)\n",
		plan.Total, plan.AllASIC, plan.AllFPGA, plan.Savings(), plan.Exact)
	return nil
}

// cmdCompare compares platforms on a shared uniform scenario. Two
// modes: the default domain-set mode evaluates the N platforms of a
// Table 2 iso-performance set (FPGA, ASIC, GPU, CPU) through the
// shared api compute, so `-json` output is byte-identical to the
// POST /v1/compare response; passing -fpga or -asic selects the
// legacy catalog head-to-head of two Table 3 devices.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fpgaName := fs.String("fpga", "IndustryFPGA1", "catalog FPGA (catalog head-to-head mode)")
	asicName := fs.String("asic", "IndustryASIC1", "catalog ASIC (catalog head-to-head mode)")
	domain := fs.String("domain", "", "iso-performance domain set (DNN, ImgProc, Crypto; default DNN)")
	platforms := fs.String("platforms", "", "comma-separated platforms to compare: kinds (fpga,asic,gpu,cpu) or catalog device names (default: the domain's full set)")
	napps := fs.Int("napps", 0, "number of sequential applications (default 3 catalog / 5 domain)")
	lifetime := fs.Float64("lifetime", 2, "application lifetime in years")
	volume := fs.Float64("volume", 1e6, "application volume")
	maxapps := fs.Int("maxapps", 0, "winner-per-N_app frontier length (domain mode, default 12)")
	duty := fs.Float64("duty", 0.3, "duty cycle for both platforms (catalog mode)")
	pue := fs.Float64("pue", 1.2, "facility PUE (catalog mode)")
	jsonOut := fs.Bool("json", false, "emit the canonical api document (/v1/compare, domain mode)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	catalogMode := false
	var domainOnly, catalogOnly []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fpga", "asic":
			catalogMode = true
		case "duty", "pue":
			catalogOnly = append(catalogOnly, "-"+f.Name)
		case "domain", "platforms", "maxapps", "json":
			domainOnly = append(domainOnly, "-"+f.Name)
		}
	})
	if !catalogMode {
		// The domain sets carry Table 2's calibrated deployment knobs;
		// silently dropping an explicit -duty/-pue would report numbers
		// for inputs the user did not ask for.
		if len(catalogOnly) > 0 {
			return fmt.Errorf("%s belong(s) to the catalog head-to-head mode; pass -fpga/-asic to use it",
				strings.Join(catalogOnly, ", "))
		}
		return runSetCompare(*domain, *platforms, *napps, *lifetime, *volume, *maxapps, *jsonOut)
	}
	if len(domainOnly) > 0 {
		return fmt.Errorf("%s belong(s) to the domain-set mode; drop -fpga/-asic to use it",
			strings.Join(domainOnly, ", "))
	}
	if *napps == 0 {
		*napps = 3
	}
	build := func(name string, wantKind greenfpga.DeviceKind) (greenfpga.Platform, error) {
		spec, err := greenfpga.DeviceByName(name)
		if err != nil {
			return greenfpga.Platform{}, err
		}
		if spec.Kind != wantKind {
			return greenfpga.Platform{}, fmt.Errorf("%s is a %s, need a %s", name, spec.Kind, wantKind)
		}
		return greenfpga.Platform{
			Spec:            spec,
			DutyCycle:       *duty,
			PUE:             *pue,
			DesignEngineers: 500,
			DesignDuration:  greenfpga.Years(2),
		}, nil
	}
	fpga, err := build(*fpgaName, greenfpga.FPGA)
	if err != nil {
		return err
	}
	asic, err := build(*asicName, greenfpga.ASIC)
	if err != nil {
		return err
	}
	pr := greenfpga.Pair{FPGA: fpga, ASIC: asic}
	cmp, err := pr.Compare(greenfpga.Uniform("compare", *napps,
		greenfpga.Years(*lifetime), *volume, 0))
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("%s vs %s: %d apps x %gy, %g units, duty %g, PUE %g",
			*fpgaName, *asicName, *napps, *lifetime, *volume, *duty, *pue),
		"Platform", "Design", "Mfg", "Pkg", "EOL", "Operation", "App-dev", "Total")
	for _, side := range []struct {
		name string
		b    greenfpga.Breakdown
	}{{*fpgaName, cmp.FPGA.Breakdown}, {*asicName, cmp.ASIC.Breakdown}} {
		t.AddRow(side.name,
			side.b.Design.String(), side.b.Manufacturing.String(),
			side.b.Packaging.String(), side.b.EOL.String(),
			side.b.Operation.String(),
			(side.b.AppDevelopment + side.b.Configuration).String(),
			side.b.Total().String())
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	verdict := "the FPGA fleet is the more sustainable choice"
	if cmp.Ratio >= 1 {
		verdict = "the per-application ASICs are the more sustainable choice"
	}
	fmt.Printf("\nFPGA:ASIC ratio = %.3f — %s\n", cmp.Ratio, verdict)
	return nil
}

// runSetCompare runs the domain-set comparison through the shared api
// compute, so numbers (and with -json, bytes) match POST /v1/compare.
func runSetCompare(domain, platforms string, napps int, lifetime, volume float64, maxapps int, jsonOut bool) error {
	req := api.CompareRequest{
		Domain: domain, NApps: napps,
		LifetimeYears: lifetime, Volume: volume, MaxApps: maxapps,
	}
	specs, err := platformSpecArgs(platforms)
	if err != nil {
		return err
	}
	req.Platforms = specs
	req = req.Normalized()
	resp, err := api.RunCompare(req)
	if err != nil {
		return err
	}
	if jsonOut {
		return api.WriteJSON(os.Stdout, resp)
	}
	const kgPerKt = 1e6
	t := report.NewTable(
		fmt.Sprintf("%s platform set: %d apps x %gy, %g units",
			resp.Domain, resp.NApps, resp.LifetimeYears, resp.Volume),
		"Platform", "Kind", "Embodied [kt]", "Deployment [kt]", "Total [kt]")
	for _, p := range resp.Platforms {
		b := p.Breakdown
		embodied := b.DesignKg + b.ManufacturingKg + b.PackagingKg + b.EOLKg
		t.AddRow(p.Platform, p.Kind,
			fmt.Sprintf("%.2f", embodied/kgPerKt),
			fmt.Sprintf("%.2f", (b.TotalKg-embodied)/kgPerKt),
			fmt.Sprintf("%.2f", b.TotalKg/kgPerKt))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nwinner at N_app=%d: %s\n", resp.NApps, resp.Winner)
	for _, r := range resp.Ratios {
		fmt.Printf("  %s : %s = %.3f\n", r.A, r.B, r.Ratio)
	}
	fmt.Println("\nwinner per N_app:")
	for _, f := range resp.Frontier {
		fmt.Printf("  N=%-3d %-12s %.2f kt\n", f.NApps, f.Winner, f.TotalKg/kgPerKt)
	}
	return nil
}

// cmdWafer prints wafer-level manufacturing economics for a catalog
// device: gross/good dice per 300mm wafer and per-wafer carbon.
func cmdWafer(args []string) error {
	fs := flag.NewFlagSet("wafer", flag.ContinueOnError)
	name := fs.String("device", "", "catalog device (default: the whole Table 3 catalog)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	devices := greenfpga.IndustryDevices()
	if *name != "" {
		d, err := greenfpga.DeviceByName(*name)
		if err != nil {
			return err
		}
		devices = []greenfpga.DeviceSpec{d}
	}
	t := report.NewTable("Wafer economics (300mm, Murphy yield)",
		"Device", "Node", "Die", "Gross dice", "Good dice", "Yield",
		"Per wafer", "Per good die")
	for _, d := range devices {
		res, err := fab.PerWafer(fab.Inputs{Node: d.Node, DieArea: d.DieArea}, yield.Wafer300)
		if err != nil {
			return err
		}
		t.AddRow(d.Name, d.Node.Name, d.DieArea.String(),
			fmt.Sprintf("%d", res.GrossDice),
			fmt.Sprintf("%.1f", res.GoodDice),
			fmt.Sprintf("%.3f", res.Yield),
			res.PerWafer.String(), res.PerGoodDie.String())
	}
	return t.WriteText(os.Stdout)
}

// cmdValidate checks a scenario config without running it.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	path := fs.String("config", "", "scenario JSON file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *path == "" {
		return usagef("usage: greenfpga validate -config <file.json>")
	}
	cfg, err := config.Load(*path)
	if err != nil {
		return err
	}
	scen, err := cfg.ToScenario()
	if err != nil {
		return err
	}
	platforms := 0
	if cfg.FPGA != nil {
		platforms++
	}
	if cfg.ASIC != nil {
		platforms++
	}
	fmt.Printf("%s: OK (%d platform(s), %d application(s), %s total)\n",
		*path, platforms, len(scen.Apps), scen.TotalYears())
	return nil
}
