module greenfpga

go 1.24
